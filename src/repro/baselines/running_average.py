"""History-based background subtraction baselines.

The paper's introduction spans the design space: "Background
subtraction algorithms range from history-based realizations to
adaptive learning algorithms", and picks MoG because it "offers a very
good quality and efficiency in capturing multi-modal background
scenes". These two classical history-based baselines make that claim
testable:

* :class:`FrameDifference` — foreground = pixels that changed more
  than a threshold since the previous frame. Trivially cheap; detects
  only *motion*, so slow or briefly-stationary objects vanish.
* :class:`RunningAverage` — a single exponentially-weighted background
  image (optionally with a matching running variance for an adaptive
  threshold). The unimodal assumption is exactly what breaks on
  flickering/multi-modal pixels — which is where MoG earns its cost
  (see ``benchmarks/test_baseline_quality.py``).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class FrameDifference:
    """Two-frame differencing."""

    def __init__(self, shape: tuple[int, int], threshold: float = 25.0) -> None:
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        if threshold <= 0:
            raise ConfigError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self._previous: np.ndarray | None = None
        self.frames_processed = 0

    def apply(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        current = frame.astype(np.float64)
        if self._previous is None:
            mask = np.zeros(self.shape, dtype=bool)
        else:
            mask = np.abs(current - self._previous) > self.threshold
        self._previous = current
        self.frames_processed += 1
        return mask

    def apply_sequence(self, frames) -> np.ndarray:
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)


class RunningAverage:
    """Exponential running-average background with adaptive threshold.

    Background estimate ``B`` and variance ``V`` update only from
    pixels currently classified background (selective update), the
    standard trick to keep foreground objects from bleeding into the
    model::

        fg   = |x - B|  >  k * sqrt(V)
        B   += a * (x - B)      (background pixels)
        V   += a * ((x-B)^2 - V)

    One mode per pixel: a bimodal background pushes ``B`` between the
    modes and inflates ``V`` until either everything is foreground or
    nothing is — the failure MoG's mixture fixes.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        learning_rate: float = 0.05,
        k: float = 2.5,
        initial_sd: float = 10.0,
        sd_floor: float = 4.0,
    ) -> None:
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        if not 0.0 < learning_rate < 1.0:
            raise ConfigError(
                f"learning_rate must be in (0, 1), got {learning_rate}"
            )
        if k <= 0 or initial_sd <= 0 or sd_floor <= 0:
            raise ConfigError("k, initial_sd and sd_floor must be positive")
        self.learning_rate = learning_rate
        self.k = k
        self.initial_sd = initial_sd
        self.sd_floor = sd_floor
        self._mean: np.ndarray | None = None
        self._var: np.ndarray | None = None
        self.frames_processed = 0

    def apply(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        x = frame.astype(np.float64)
        if self._mean is None:
            self._mean = x.copy()
            self._var = np.full(self.shape, self.initial_sd**2)
        delta = x - self._mean
        sd = np.sqrt(np.maximum(self._var, self.sd_floor**2))
        foreground = np.abs(delta) > self.k * sd

        a = self.learning_rate
        background = ~foreground
        self._mean[background] += a * delta[background]
        self._var[background] += a * (
            delta[background] ** 2 - self._var[background]
        )
        self.frames_processed += 1
        return foreground

    def apply_sequence(self, frames) -> np.ndarray:
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def background_image(self) -> np.ndarray:
        if self._mean is None:
            raise ConfigError("no frame processed yet")
        return np.clip(self._mean, 0.0, 255.0)
