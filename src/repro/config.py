"""Configuration objects shared across the library.

Two dataclasses describe a run:

* :class:`MoGParams` — the *algorithmic* knobs of the Mixture-of-Gaussians
  model (number of components, learning rate, match threshold, ...).
  These are the symbols used in Algorithm 1 of the paper:
  ``Gamma1`` (match / closeness threshold, in standard deviations) and
  ``Gamma2`` (minimum weight for a component to count as background).

* :class:`RunConfig` — the *execution* knobs: frame geometry, data type,
  optimization level, tiling parameters.

Both are immutable; derived quantities are exposed as properties so a
config can be passed around freely without defensive copying.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from .errors import ConfigError

#: Data types accepted for Gaussian parameters, keyed by their CUDA names.
SUPPORTED_DTYPES = {
    "double": np.float64,
    "float": np.float32,
}


def resolve_dtype(dtype: str | type | np.dtype) -> np.dtype:
    """Normalise ``dtype`` to a NumPy dtype.

    Accepts the CUDA-style names ``"double"`` / ``"float"`` as well as
    anything NumPy itself understands, but restricts the result to the
    two floating-point widths the paper studies.
    """
    if isinstance(dtype, str) and dtype in SUPPORTED_DTYPES:
        out = np.dtype(SUPPORTED_DTYPES[dtype])
    else:
        try:
            out = np.dtype(dtype)
        except TypeError as exc:  # e.g. dtype=object()
            raise ConfigError(f"unsupported dtype: {dtype!r}") from exc
    if out not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ConfigError(
            f"Gaussian parameters must be float32 or float64, got {out}"
        )
    return out


@dataclass(frozen=True)
class MoGParams:
    """Algorithmic parameters of the Stauffer-Grimson mixture model.

    Attributes
    ----------
    num_gaussians:
        Components per pixel. The paper evaluates 3 (default) and 5.
    learning_rate:
        The ``alpha`` in the exponential weight update
        ``w <- (1-alpha)*w + alpha*match``. The paper's Algorithm 4/5
        writes the complementary form; see :mod:`repro.mog.update`.
    match_threshold:
        ``Gamma1``: a component matches when
        ``|pixel - mean| < Gamma1 * sd``.
    background_weight:
        ``Gamma2``: minimum weight for a matched component to classify
        the pixel as background (Algorithm 1, line 24).
    initial_sd:
        Standard deviation assigned to freshly created (virtual)
        components.
    initial_weight:
        Weight assigned to freshly created components (before
        renormalisation).
    sd_floor:
        Lower clamp on standard deviations, preventing a perfectly
        static pixel from collapsing a component to sd = 0 (which would
        make every subsequent pixel a foreground outlier).
    """

    num_gaussians: int = 3
    learning_rate: float = 0.01
    match_threshold: float = 2.5
    background_weight: float = 0.15
    initial_sd: float = 30.0
    initial_weight: float = 0.05
    sd_floor: float = 4.0

    def __post_init__(self) -> None:
        if not 1 <= self.num_gaussians <= 8:
            raise ConfigError(
                f"num_gaussians must be in [1, 8], got {self.num_gaussians}"
            )
        if not 0.0 < self.learning_rate < 1.0:
            raise ConfigError(
                f"learning_rate must be in (0, 1), got {self.learning_rate}"
            )
        if self.match_threshold <= 0.0:
            raise ConfigError(
                f"match_threshold must be positive, got {self.match_threshold}"
            )
        if not 0.0 < self.background_weight < 1.0:
            raise ConfigError(
                "background_weight must be in (0, 1), got "
                f"{self.background_weight}"
            )
        if self.initial_sd <= 0.0 or self.sd_floor <= 0.0:
            raise ConfigError("initial_sd and sd_floor must be positive")
        if not 0.0 < self.initial_weight <= 1.0:
            raise ConfigError(
                f"initial_weight must be in (0, 1], got {self.initial_weight}"
            )

    def replace(self, **kwargs) -> "MoGParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class FusionParams:
    """Thresholds of the fused per-pixel post stages.

    Consumed by the fusion kernel pass (``repro.kernels.fusion``) and
    its NumPy oracle (``repro.post.analytics``). The shadow bounds
    follow the grayscale Horprasert-style test: a shadow pixel is a
    *dimmed* copy of the background estimate, so the brightness ratio
    must sit in ``[shadow_alpha_low, shadow_alpha_high) ⊂ (0, 1]``.

    Attributes
    ----------
    min_contrast:
        Minimum ``|x - background|`` (gray levels) for a foreground
        pixel to survive the fused threshold stage.
    shadow_alpha_low, shadow_alpha_high:
        Brightness-ratio band classified as shadow.
    """

    min_contrast: float = 12.0
    shadow_alpha_low: float = 0.45
    shadow_alpha_high: float = 0.95

    def __post_init__(self) -> None:
        if self.min_contrast < 0.0:
            raise ConfigError(
                f"min_contrast must be non-negative, got {self.min_contrast}"
            )
        if not 0.0 < self.shadow_alpha_low < self.shadow_alpha_high <= 1.0:
            raise ConfigError(
                "need 0 < shadow_alpha_low < shadow_alpha_high <= 1 "
                "(a shadow dims the background), got "
                f"{self.shadow_alpha_low}, {self.shadow_alpha_high}"
            )

    def replace(self, **kwargs) -> "FusionParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Execution backends a subtractor can run on. ``"cpu"`` is the
#: vectorized NumPy path, ``"sim"`` the simulated GPU, ``"jit"`` the
#: numba-compiled per-pixel kernels (falls back to ``"cpu"`` with a
#: warning when numba is not installed).
BACKENDS = ("cpu", "sim", "jit")

#: Background-model families the kernel stack can run. ``"mog"`` is
#: the paper's Stauffer-Grimson mixture; ``"dmsg"`` the dual-mode
#: single Gaussian (one background mode plus an age-gated candidate
#: that swaps in on scene change) — far cheaper per pixel, the serving
#: tier's low-cost degrade target. See :mod:`repro.kernels.ir` for the
#: :class:`~repro.kernels.ir.ModelFamily` definitions.
MODELS = ("mog", "dmsg")

#: Age ceiling of the DMSG running averages. Caps the effective
#: learning rate at ``1/DMSG_AGE_CAP`` so an old background mode can
#: still adapt to slow drift. Fixed (not a :class:`MoGParams` field)
#: so DMSG checkpoints stay schema-compatible with MoG ones.
DMSG_AGE_CAP = 128.0

#: Geometry of the paper's evaluation video.
FULL_HD = (1080, 1920)
#: Frames processed in the paper's timing runs.
PAPER_NUM_FRAMES = 450


@dataclass(frozen=True)
class RunConfig:
    """Execution configuration for a background-subtraction run.

    Attributes
    ----------
    height, width:
        Frame geometry in pixels. The paper uses full HD (1080 x 1920);
        simulator-backed runs default to smaller frames and the bench
        harness extrapolates per-pixel counters (see
        :mod:`repro.bench.harness`).
    dtype:
        ``"double"`` or ``"float"`` — precision of the Gaussian
        parameters (Section V-C of the paper).
    threads_per_block:
        CUDA block size used for the non-tiled kernels (paper: 128).
    tile_pixels:
        Tile size for the level-G (shared memory) kernel. 640 pixels is
        the paper's choice: 640 px * 3 components * 3 params * 8 B =
        45 KiB, filling the 48 KiB shared memory of one Fermi SM.
    frame_group:
        Frames per group for level G (the paper sweeps 1..32, best = 8).
    profile_every:
        Profile every Nth kernel launch on the simulated backend; the
        rest run on the functional tier (exact masks, no counters).
        1 (default) profiles every launch — today's behaviour.
    backend:
        Optional default execution backend (one of :data:`BACKENDS`)
        for consumers that accept a run config but no explicit
        ``backend=`` argument; ``None`` keeps each consumer's own
        default.
    model:
        Optional default background-model family (one of
        :data:`MODELS`) for consumers that accept a run config but no
        explicit ``model=`` argument; ``None`` keeps each consumer's
        own default (``"mog"``).
    """

    height: int = 240
    width: int = 320
    dtype: str = "double"
    threads_per_block: int = 128
    tile_pixels: int = 640
    frame_group: int = 8
    profile_every: int = 1
    backend: str | None = None
    model: str | None = None

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ConfigError(
                f"frame geometry must be positive, got {self.height}x{self.width}"
            )
        if self.backend is not None and self.backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.model is not None and self.model not in MODELS:
            raise ConfigError(
                f"model must be one of {MODELS}, got {self.model!r}"
            )
        resolve_dtype(self.dtype)  # validates
        if self.threads_per_block <= 0 or self.threads_per_block % 32:
            raise ConfigError(
                "threads_per_block must be a positive multiple of the warp "
                f"size (32), got {self.threads_per_block}"
            )
        if self.tile_pixels <= 0 or self.tile_pixels % 32:
            raise ConfigError(
                f"tile_pixels must be a positive multiple of 32, got {self.tile_pixels}"
            )
        if self.frame_group <= 0:
            raise ConfigError(
                f"frame_group must be positive, got {self.frame_group}"
            )
        if self.profile_every < 1:
            raise ConfigError(
                f"profile_every must be >= 1, got {self.profile_every}"
            )

    @property
    def num_pixels(self) -> int:
        """Pixels per frame."""
        return self.height * self.width

    @property
    def np_dtype(self) -> np.dtype:
        """The NumPy dtype of the Gaussian parameters."""
        return resolve_dtype(self.dtype)

    @property
    def itemsize(self) -> int:
        """Bytes per Gaussian parameter (8 for double, 4 for float)."""
        return self.np_dtype.itemsize

    def gaussian_bytes(self, num_gaussians: int) -> int:
        """Bytes of Gaussian state for a whole frame.

        The paper quotes 149 MB for full HD, 3 components, double
        precision (Section IV-D): ``1080*1920*3*3*8``.
        """
        return self.num_pixels * num_gaussians * 3 * self.itemsize

    def replace(self, **kwargs) -> "RunConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Fault policies for the process-parallel path.
FAULT_POLICIES = ("fail", "restart", "serial_fallback")
#: Stage-error policies for the streaming pipeline.
STAGE_ERROR_POLICIES = ("raise", "degrade")


@dataclass(frozen=True)
class FaultPolicy:
    """How the serving path reacts to worker and stage failures.

    Attributes
    ----------
    policy:
        What :class:`~repro.parallel.ParallelMoG` does when a stripe
        worker dies, hangs past ``timeout_s``, or raises:

        * ``"fail"`` (default) — raise a typed
          :class:`~repro.errors.WorkerError` naming the stripe;
        * ``"restart"`` — spawn a replacement worker (restoring the
          stripe's last checkpointed mixture state when
          ``checkpoint=True``) and re-submit the stripe, up to
          ``max_restarts`` times per stripe;
        * ``"serial_fallback"`` — degrade the stripe to an in-process
          :class:`~repro.mog.MoGVectorized` for the rest of the run.
    timeout_s:
        Upper bound on waiting for any single stripe result. This is
        what turns a dead worker from an infinite hang into a handled
        fault.
    probe_timeout_s:
        Upper bound on the startup handshake of each worker, so an
        initializer failure surfaces at construction instead of as an
        opaque hang on the first frame.
    shutdown_timeout_s:
        Grace period for workers to drain and exit on ``close()``
        before escalating to a hard ``terminate()``.
    max_restarts:
        Per-stripe restart budget under ``policy="restart"``; once
        exhausted the fault is raised as a ``WorkerError``.
    checkpoint:
        Ship the stripe's mixture state back with every result so a
        restarted (or fallen-back) stripe resumes exactly where the
        dead worker left off, keeping masks identical to the serial
        implementation. Costs one extra state copy per stripe per
        frame; only active when ``policy`` is not ``"fail"``.
    stage_error:
        What :class:`~repro.core.stream.SurveillancePipeline` does when
        a stage raises mid-step: ``"raise"`` re-raises (leaving the
        frame index uncommitted), ``"degrade"`` returns the last good
        mask flagged as degraded.
    """

    policy: str = "fail"
    timeout_s: float = 30.0
    probe_timeout_s: float = 10.0
    shutdown_timeout_s: float = 5.0
    max_restarts: int = 3
    checkpoint: bool = True
    stage_error: str = "raise"

    def __post_init__(self) -> None:
        if self.policy not in FAULT_POLICIES:
            raise ConfigError(
                f"policy must be one of {FAULT_POLICIES}, got {self.policy!r}"
            )
        if self.stage_error not in STAGE_ERROR_POLICIES:
            raise ConfigError(
                "stage_error must be one of "
                f"{STAGE_ERROR_POLICIES}, got {self.stage_error!r}"
            )
        for name in ("timeout_s", "probe_timeout_s", "shutdown_timeout_s"):
            value = getattr(self, name)
            if not value > 0.0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.max_restarts < 0:
            raise ConfigError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )

    @property
    def wants_checkpoint(self) -> bool:
        """Whether results should carry state back (no overhead under
        ``"fail"``, where the state would never be used)."""
        return self.checkpoint and self.policy != "fail"

    def replace(self, **kwargs) -> "FaultPolicy":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Layers a :class:`FaultPlan` can corrupt.
FAULT_TARGETS = ("state", "frame", "dma", "serve")
#: Corruption modes. ``bitflip``/``stuck`` apply to memory targets
#: (``state``/``frame``/``dma``); ``stall``/``raise`` to ``serve``.
FAULT_MODES = ("bitflip", "stuck", "stall", "raise")
#: Simulated ECC modes (the C2075 ships with ECC; the paper measures
#: with it enabled).
ECC_MODES = ("off", "on")

#: Modes accepted by a memory target and by the serve target.
_MEMORY_FAULT_MODES = ("bitflip", "stuck")
_SERVE_FAULT_MODES = ("stall", "raise")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected soft errors.

    Interpreted by :class:`repro.faults.FaultInjector`. Every random
    choice (which element, which bit) comes from a generator seeded with
    ``seed`` via :func:`repro.utils.rng.rng_from_seed`, so a plan
    replays identically — the property every chaos test leans on.

    Attributes
    ----------
    target:
        Layer to corrupt:

        * ``"state"`` — mixture state: the live
          :class:`~repro.mog.params.MixtureState` arrays on the CPU
          backend, or the simulated GPU's float global-memory buffers
          (the Gaussian parameter buffer) on the sim backend;
        * ``"frame"`` — the input frame at the video layer (the frame
          is corrupted on a copy; the caller's array is untouched);
        * ``"dma"`` — the flattened frame bytes of a simulated
          host->device transfer, after validation but before the
          kernel sees them;
        * ``"serve"`` — the serving layer: stall or raise inside a
          pipeline step (see :class:`repro.faults.FaultyPipeline`).
    mode:
        ``"bitflip"`` (flip one random bit per fault) or ``"stuck"``
        (overwrite the element with ``stuck_value``) for memory
        targets; ``"stall"`` (sleep ``stall_s``) or ``"raise"`` (raise
        :class:`~repro.errors.InjectedFault`) for the serve target.
    frames:
        Frame indices at which the plan fires (0-based; for sim
        ``state`` injection these are kernel-launch indices, which
        coincide with frame indices for the non-grouped levels).
    flips:
        Faults injected per firing (memory targets).
    stuck_value:
        Value written by ``"stuck"`` mode.
    stall_s:
        Sleep duration of a serve-layer ``"stall"``.
    buffer:
        Optional substring filter restricting sim-memory injection to
        matching buffer names (e.g. ``"gaussians"``); ``None`` targets
        every float (state-carrying) buffer.
    ecc:
        ``"off"`` — faults land; ``"on"`` — single-bit flips are
        corrected (counted in ``faults.corrected``, memory untouched),
        while ``"stuck"`` elements differ in many bits, which SECDED
        detects but cannot correct: the injector raises
        :class:`~repro.errors.IntegrityError`, the simulated analogue
        of a double-bit-error machine check.
    seed:
        Seed for the injector's deterministic RNG.
    """

    target: str = "state"
    mode: str = "bitflip"
    frames: tuple[int, ...] = ()
    flips: int = 1
    stuck_value: float = 0.0
    stall_s: float = 0.05
    buffer: str | None = None
    ecc: str = "off"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.target not in FAULT_TARGETS:
            raise ConfigError(
                f"target must be one of {FAULT_TARGETS}, got {self.target!r}"
            )
        if self.mode not in FAULT_MODES:
            raise ConfigError(
                f"mode must be one of {FAULT_MODES}, got {self.mode!r}"
            )
        allowed = (
            _SERVE_FAULT_MODES if self.target == "serve"
            else _MEMORY_FAULT_MODES
        )
        if self.mode not in allowed:
            raise ConfigError(
                f"mode {self.mode!r} is not valid for target "
                f"{self.target!r}; expected one of {allowed}"
            )
        if self.ecc not in ECC_MODES:
            raise ConfigError(
                f"ecc must be one of {ECC_MODES}, got {self.ecc!r}"
            )
        frames = tuple(int(f) for f in self.frames)
        if any(f < 0 for f in frames):
            raise ConfigError(f"frames must be non-negative, got {frames}")
        object.__setattr__(self, "frames", frames)
        if self.flips < 1:
            raise ConfigError(f"flips must be >= 1, got {self.flips}")
        if not self.stall_s > 0.0:
            raise ConfigError(f"stall_s must be positive, got {self.stall_s}")

    def replace(self, **kwargs) -> "FaultPlan":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Integrity-guard modes for the mixture-state validator.
INTEGRITY_MODES = ("off", "detect", "repair")


@dataclass(frozen=True)
class IntegrityPolicy:
    """How the mixture-state integrity guard reacts to corruption.

    The guard (:class:`repro.faults.IntegrityGuard`) validates the MoG
    invariants that hold under the pinned update equations: all fields
    finite; every weight in ``[0, 1]`` and every pixel's weight sum in
    ``(0, K]`` (this implementation follows the paper and does not
    renormalise, so the sum is bounded by the component count rather
    than pinned to 1); every standard deviation at or above the clamp
    floor and below ``sd_cap``; every mean within ``mean_cap``. A soft
    error in an exponent bit violates at least one of these.

    Attributes
    ----------
    mode:
        ``"off"`` — no checking; ``"detect"`` — a violation raises
        :class:`~repro.errors.IntegrityError` (which a pipeline running
        ``on_error="degrade"`` absorbs as a degraded frame);
        ``"repair"`` — corrupted pixels' Gaussians are re-initialised
        from the current frame (the per-pixel analogue of
        :meth:`~repro.mog.params.MixtureState.from_first_frame`), so
        only the flagged pixels lose history and their masks re-converge
        within the model's warm-up horizon.
    check_every:
        Validate every Nth frame (1 = every frame). Corruption landing
        between checks is caught at the next boundary.
    weight_tol:
        Absolute tolerance on the weight-range and weight-sum bounds.
    sd_cap:
        Upper plausibility bound on standard deviations (the update
        equations keep sd near the data scale; an exponent-bit flip
        lands decades above it).
    mean_cap:
        Upper plausibility bound on ``|mean|`` (init spreads unclaimed
        components down to ``-1000*(K-1)``; keep the cap well above).
    """

    mode: str = "detect"
    check_every: int = 1
    weight_tol: float = 1e-5
    sd_cap: float = 1e6
    mean_cap: float = 1e6

    def __post_init__(self) -> None:
        if self.mode not in INTEGRITY_MODES:
            raise ConfigError(
                f"mode must be one of {INTEGRITY_MODES}, got {self.mode!r}"
            )
        if self.check_every < 1:
            raise ConfigError(
                f"check_every must be >= 1, got {self.check_every}"
            )
        if not self.weight_tol > 0.0:
            raise ConfigError(
                f"weight_tol must be positive, got {self.weight_tol}"
            )
        if not self.sd_cap > 0.0 or not self.mean_cap > 0.0:
            raise ConfigError("sd_cap and mean_cap must be positive")

    @property
    def active(self) -> bool:
        """Whether any checking happens at all."""
        return self.mode != "off"

    def replace(self, **kwargs) -> "IntegrityPolicy":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Backpressure policies for a stream's bounded input queue.
BACKPRESSURE_POLICIES = ("block", "drop_oldest", "reject")

#: Stream -> shard placement strategies for the sharded server.
PLACEMENT_POLICIES = ("hash", "round_robin")

#: Load-shedding policies applied at the sharded ingest gateway when a
#: stream's in-flight depth exceeds ``shed_inflight``.
SHED_POLICIES = ("reject", "drop")

#: What admission does when ``resume=True`` finds a checkpoint it
#: cannot restore (corrupt, truncated, or written by a differently
#: configured model).
RESUME_MISMATCH_POLICIES = ("fail", "fresh")


@dataclass(frozen=True)
class ControllerConfig:
    """Closed-loop degradation/recovery governor for the serving tier.

    The controller (:class:`repro.serve.controller.ServerController`)
    evaluates each stream at frame-count window boundaries and walks a
    per-stream *rung ladder* — baseline, relaxed integrity/profiling
    guards, pass-stack downshifts along ``level_ladder``, a model
    switch to ``model_fallback`` where the stream's scenario tolerates
    it per the committed quality matrix, and finally load shedding —
    one rung per decision, with hysteresis on the way back up. The
    policy is a pure function of windowed telemetry deltas: no
    wall-clock, no randomness, so chaos tests can pin exact transition
    sequences.

    Attributes
    ----------
    window_frames:
        Evaluate a stream every N completed frames (the telemetry
        window size; all deltas and rates are per this many frames).
    queue_high:
        Hot-watermark fraction of ``queue_capacity``: a window whose
        boundary queue depth is at or above ``ceil(queue_high *
        capacity)`` counts toward degradation.
    queue_low:
        Cool-watermark fraction: recovery requires depth at or below
        ``floor(queue_low * capacity)``. Must be strictly below
        ``queue_high`` — the gap is the hysteresis band.
    degrade_after:
        Consecutive hot windows before moving one rung down.
    recover_after:
        Consecutive cool windows before moving one rung back up
        (usually larger than ``degrade_after`` so recovery is the
        cautious direction).
    level_ladder:
        Pass-stack downshift sequence, best-first. A stream whose base
        level appears in the ladder only descends to the entries after
        it (base ``"F"`` with the default ladder downshifts to ``"D"``
        then ``"A"``); a base level outside the ladder descends through
        the whole ladder.
    model_fallback:
        Cheap model family to switch to under sustained overload
        (``None`` disables the rung). The switch is offered only to
        streams tagged with a ``scenario`` whose quality-matrix row
        shows the fallback holding F1 within ``model_margin`` of the
        base model; untagged streams and unknown scenarios never
        switch.
    model_margin:
        Maximum F1 the fallback may lose versus the base model before
        the scenario is deemed intolerant.
    quality_matrix:
        Path to ``QUALITY_MATRIX.json``; ``None`` auto-locates the
        committed matrix next to the bench snapshot. A missing or
        unreadable matrix conservatively disables model switches.
    guard_relax:
        Multiplier applied to ``check_every``/``profile_every`` on the
        guard-relax rung (0 or 1 disables the rung). Integrity signals
        (``integrity.violations``/``faults.corrected`` deltas) force
        this rung back to baseline regardless of load.
    allow_shed:
        Whether the last rung may shed: overflow frames on a full
        queue are dropped and counted (``frames_shed``) instead of
        engaging backpressure, so the stream keeps emitting.
    max_log:
        Upper bound on retained transition-log entries (the log is a
        ring; counters are unaffected).
    """

    window_frames: int = 32
    queue_high: float = 0.75
    queue_low: float = 0.25
    degrade_after: int = 1
    recover_after: int = 2
    level_ladder: tuple[str, ...] = ("F", "D", "A")
    model_fallback: str | None = "dmsg"
    model_margin: float = 0.05
    quality_matrix: str | None = None
    guard_relax: int = 4
    allow_shed: bool = True
    max_log: int = 1024

    def __post_init__(self) -> None:
        if self.window_frames < 1:
            raise ConfigError(
                f"window_frames must be >= 1, got {self.window_frames}"
            )
        if not 0.0 <= self.queue_low < self.queue_high <= 1.0:
            raise ConfigError(
                "need 0 <= queue_low < queue_high <= 1, got "
                f"queue_low={self.queue_low}, queue_high={self.queue_high}"
            )
        if self.degrade_after < 1:
            raise ConfigError(
                f"degrade_after must be >= 1, got {self.degrade_after}"
            )
        if self.recover_after < 1:
            raise ConfigError(
                f"recover_after must be >= 1, got {self.recover_after}"
            )
        ladder = tuple(str(entry) for entry in self.level_ladder)
        if not ladder:
            raise ConfigError("level_ladder must not be empty")
        if len(set(ladder)) != len(ladder):
            raise ConfigError(
                f"level_ladder entries must be unique, got {ladder}"
            )
        if any(not entry for entry in ladder):
            raise ConfigError("level_ladder entries must be non-empty")
        object.__setattr__(self, "level_ladder", ladder)
        if self.model_fallback is not None and self.model_fallback not in MODELS:
            raise ConfigError(
                f"model_fallback must be one of {MODELS}, "
                f"got {self.model_fallback!r}"
            )
        if self.model_margin < 0.0:
            raise ConfigError(
                f"model_margin must be >= 0, got {self.model_margin}"
            )
        if self.guard_relax < 1:
            raise ConfigError(
                f"guard_relax must be >= 1, got {self.guard_relax}"
            )
        if self.max_log < 1:
            raise ConfigError(f"max_log must be >= 1, got {self.max_log}")

    def replace(self, **kwargs) -> "ControllerConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class ServeConfig:
    """Multi-stream server knobs (:class:`repro.serve.StreamServer`).

    Attributes
    ----------
    workers:
        Threads in the shared worker pool. Each worker processes one
        stream's batch at a time; streams are strictly serialised, so
        any ``workers >= 1`` produces per-stream masks identical to a
        serial run.
    max_streams:
        Admission limit: registering more streams raises
        :class:`~repro.errors.ConfigError`.
    queue_capacity:
        Bounded depth of each stream's input queue. A full queue
        engages ``backpressure``.
    backpressure:
        What :meth:`~repro.serve.StreamServer.submit` does when the
        stream's queue is full:

        * ``"block"`` (default) — wait up to ``submit_timeout_s`` for
          space, then raise :class:`~repro.errors.BackpressureError`;
        * ``"drop_oldest"`` — evict the oldest queued frame (counted
          in ``stream.<id>.frames_dropped``) and admit the new one;
        * ``"reject"`` — raise
          :class:`~repro.errors.BackpressureError` immediately.
    batch_frames:
        Frames a worker takes from one stream per scheduling turn
        before the round-robin cursor advances — bounds how long a hot
        stream can hold a worker.
    submit_timeout_s:
        Upper bound on a ``"block"`` submit.
    drain_timeout_s:
        Default upper bound on :meth:`~repro.serve.StreamServer.drain`.
    checkpoint_every:
        Write a durable checkpoint of each stream's pipeline every N
        completed frames (0 = disabled). Requires ``checkpoint_dir``.
        Checkpoints are atomic write-rename files named
        ``<stream_id>.ckpt``.
    checkpoint_dir:
        Directory holding the per-stream checkpoint files (created on
        demand).
    resume:
        When a stream is registered and ``<checkpoint_dir>/<id>.ckpt``
        exists, restore the pipeline from it before serving; a corrupt
        or mismatched checkpoint raises
        :class:`~repro.errors.CheckpointError` at ``add_stream``.
    backend:
        Default execution backend for the per-stream pipelines (one of
        :data:`BACKENDS`); ``None`` keeps the server's default
        (``"cpu"``). ``"jit"`` degrades per the subtractor's fallback
        semantics when numba is unavailable, so masks stay identical.
    model:
        Default background-model family for the per-stream pipelines
        (one of :data:`MODELS`); ``None`` keeps the server's default
        (``"mog"``). Individual streams can override it at
        ``add_stream(model=...)`` so one server (or shard) serves
        mixed quality tiers.
    resume_mismatch:
        What admission does when ``resume=True`` finds a checkpoint it
        cannot restore: ``"fail"`` (default) raises
        :class:`~repro.errors.CheckpointError`; ``"fresh"`` starts the
        stream from scratch and records the reason in stream status
        and the ``server.resume_fallbacks`` counter.
    shards:
        Shard *processes* for :class:`repro.serve.ShardedStreamServer`
        (0 = the in-process thread server). Each shard hosts one
        thread-pool ``StreamServer``; streams are placed on shards by
        ``placement`` and frames travel over shared-memory rings.
    shard_backend:
        Backend override for pipelines inside shard processes;
        ``None`` falls back to ``backend``.
    placement:
        Stream->shard placement: ``"hash"`` (consistent hashing with
        virtual nodes; minimal movement when a shard dies) or
        ``"round_robin"``.
    shed_inflight:
        Gateway admission control: maximum frames in flight (submitted
        but not yet emitted) per stream before ``shed_policy`` engages
        (0 = unlimited).
    shed_policy:
        ``"reject"`` raises :class:`~repro.errors.BackpressureError`
        when a stream is over ``shed_inflight``; ``"drop"`` discards
        the new frame (counted in ``server.frames_shed``).
    ring_slots:
        Capacity, in frames, of each shard's shared-memory ingest
        ring.
    controller:
        Optional :class:`ControllerConfig` enabling the closed-loop
        degradation/recovery governor on each server (in sharded mode
        the config rides into every shard, so each shard governs its
        own streams).
    """

    workers: int = 2
    max_streams: int = 64
    queue_capacity: int = 8
    backpressure: str = "block"
    batch_frames: int = 1
    submit_timeout_s: float = 30.0
    drain_timeout_s: float = 60.0
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    resume: bool = False
    backend: str | None = None
    model: str | None = None
    resume_mismatch: str = "fail"
    shards: int = 0
    shard_backend: str | None = None
    placement: str = "hash"
    shed_inflight: int = 0
    shed_policy: str = "reject"
    ring_slots: int = 32
    controller: "ControllerConfig | None" = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.model is not None and self.model not in MODELS:
            raise ConfigError(
                f"model must be one of {MODELS}, got {self.model!r}"
            )
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_streams < 1:
            raise ConfigError(
                f"max_streams must be >= 1, got {self.max_streams}"
            )
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.batch_frames < 1:
            raise ConfigError(
                f"batch_frames must be >= 1, got {self.batch_frames}"
            )
        for name in ("submit_timeout_s", "drain_timeout_s"):
            value = getattr(self, name)
            if not value > 0.0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if (self.checkpoint_every or self.resume) and not self.checkpoint_dir:
            raise ConfigError(
                "checkpoint_every/resume require checkpoint_dir to be set"
            )
        if self.resume_mismatch not in RESUME_MISMATCH_POLICIES:
            raise ConfigError(
                f"resume_mismatch must be one of {RESUME_MISMATCH_POLICIES}, "
                f"got {self.resume_mismatch!r}"
            )
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")
        if self.shard_backend is not None and self.shard_backend not in BACKENDS:
            raise ConfigError(
                f"shard_backend must be one of {BACKENDS}, "
                f"got {self.shard_backend!r}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ConfigError(
                f"placement must be one of {PLACEMENT_POLICIES}, "
                f"got {self.placement!r}"
            )
        if self.shed_inflight < 0:
            raise ConfigError(
                f"shed_inflight must be >= 0, got {self.shed_inflight}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.ring_slots < 2:
            raise ConfigError(
                f"ring_slots must be >= 2, got {self.ring_slots}"
            )
        if self.controller is not None and not isinstance(
            self.controller, ControllerConfig
        ):
            raise ConfigError(
                "controller must be a ControllerConfig or None, "
                f"got {type(self.controller).__name__}"
            )

    def replace(self, **kwargs) -> "ServeConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Default latency-histogram bucket upper bounds, in seconds
#: (1 ms .. 30 s, roughly x3 steps — spans a per-stage frame budget
#: from real-time HD to a struggling debug run).
DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs for the serving path.

    Attributes
    ----------
    enabled:
        When ``False``, registries hand out no-op instruments and
        snapshots are empty — zero overhead on the hot path.
    latency_buckets_s:
        Ascending upper bounds (seconds) of the latency-histogram
        buckets.
    """

    enabled: bool = True
    latency_buckets_s: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S

    def __post_init__(self) -> None:
        buckets = tuple(float(b) for b in self.latency_buckets_s)
        if not buckets:
            raise ConfigError("latency_buckets_s must not be empty")
        if any(b <= 0 for b in buckets) or list(buckets) != sorted(set(buckets)):
            raise ConfigError(
                "latency_buckets_s must be positive and strictly "
                f"ascending, got {self.latency_buckets_s}"
            )
        object.__setattr__(self, "latency_buckets_s", buckets)

    def replace(self, **kwargs) -> "TelemetryConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)
