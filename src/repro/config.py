"""Configuration objects shared across the library.

Two dataclasses describe a run:

* :class:`MoGParams` — the *algorithmic* knobs of the Mixture-of-Gaussians
  model (number of components, learning rate, match threshold, ...).
  These are the symbols used in Algorithm 1 of the paper:
  ``Gamma1`` (match / closeness threshold, in standard deviations) and
  ``Gamma2`` (minimum weight for a component to count as background).

* :class:`RunConfig` — the *execution* knobs: frame geometry, data type,
  optimization level, tiling parameters.

Both are immutable; derived quantities are exposed as properties so a
config can be passed around freely without defensive copying.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from .errors import ConfigError

#: Data types accepted for Gaussian parameters, keyed by their CUDA names.
SUPPORTED_DTYPES = {
    "double": np.float64,
    "float": np.float32,
}


def resolve_dtype(dtype: str | type | np.dtype) -> np.dtype:
    """Normalise ``dtype`` to a NumPy dtype.

    Accepts the CUDA-style names ``"double"`` / ``"float"`` as well as
    anything NumPy itself understands, but restricts the result to the
    two floating-point widths the paper studies.
    """
    if isinstance(dtype, str) and dtype in SUPPORTED_DTYPES:
        out = np.dtype(SUPPORTED_DTYPES[dtype])
    else:
        try:
            out = np.dtype(dtype)
        except TypeError as exc:  # e.g. dtype=object()
            raise ConfigError(f"unsupported dtype: {dtype!r}") from exc
    if out not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ConfigError(
            f"Gaussian parameters must be float32 or float64, got {out}"
        )
    return out


@dataclass(frozen=True)
class MoGParams:
    """Algorithmic parameters of the Stauffer-Grimson mixture model.

    Attributes
    ----------
    num_gaussians:
        Components per pixel. The paper evaluates 3 (default) and 5.
    learning_rate:
        The ``alpha`` in the exponential weight update
        ``w <- (1-alpha)*w + alpha*match``. The paper's Algorithm 4/5
        writes the complementary form; see :mod:`repro.mog.update`.
    match_threshold:
        ``Gamma1``: a component matches when
        ``|pixel - mean| < Gamma1 * sd``.
    background_weight:
        ``Gamma2``: minimum weight for a matched component to classify
        the pixel as background (Algorithm 1, line 24).
    initial_sd:
        Standard deviation assigned to freshly created (virtual)
        components.
    initial_weight:
        Weight assigned to freshly created components (before
        renormalisation).
    sd_floor:
        Lower clamp on standard deviations, preventing a perfectly
        static pixel from collapsing a component to sd = 0 (which would
        make every subsequent pixel a foreground outlier).
    """

    num_gaussians: int = 3
    learning_rate: float = 0.01
    match_threshold: float = 2.5
    background_weight: float = 0.15
    initial_sd: float = 30.0
    initial_weight: float = 0.05
    sd_floor: float = 4.0

    def __post_init__(self) -> None:
        if not 1 <= self.num_gaussians <= 8:
            raise ConfigError(
                f"num_gaussians must be in [1, 8], got {self.num_gaussians}"
            )
        if not 0.0 < self.learning_rate < 1.0:
            raise ConfigError(
                f"learning_rate must be in (0, 1), got {self.learning_rate}"
            )
        if self.match_threshold <= 0.0:
            raise ConfigError(
                f"match_threshold must be positive, got {self.match_threshold}"
            )
        if not 0.0 < self.background_weight < 1.0:
            raise ConfigError(
                "background_weight must be in (0, 1), got "
                f"{self.background_weight}"
            )
        if self.initial_sd <= 0.0 or self.sd_floor <= 0.0:
            raise ConfigError("initial_sd and sd_floor must be positive")
        if not 0.0 < self.initial_weight <= 1.0:
            raise ConfigError(
                f"initial_weight must be in (0, 1], got {self.initial_weight}"
            )

    def replace(self, **kwargs) -> "MoGParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Geometry of the paper's evaluation video.
FULL_HD = (1080, 1920)
#: Frames processed in the paper's timing runs.
PAPER_NUM_FRAMES = 450


@dataclass(frozen=True)
class RunConfig:
    """Execution configuration for a background-subtraction run.

    Attributes
    ----------
    height, width:
        Frame geometry in pixels. The paper uses full HD (1080 x 1920);
        simulator-backed runs default to smaller frames and the bench
        harness extrapolates per-pixel counters (see
        :mod:`repro.bench.harness`).
    dtype:
        ``"double"`` or ``"float"`` — precision of the Gaussian
        parameters (Section V-C of the paper).
    threads_per_block:
        CUDA block size used for the non-tiled kernels (paper: 128).
    tile_pixels:
        Tile size for the level-G (shared memory) kernel. 640 pixels is
        the paper's choice: 640 px * 3 components * 3 params * 8 B =
        45 KiB, filling the 48 KiB shared memory of one Fermi SM.
    frame_group:
        Frames per group for level G (the paper sweeps 1..32, best = 8).
    profile_every:
        Profile every Nth kernel launch on the simulated backend; the
        rest run on the functional tier (exact masks, no counters).
        1 (default) profiles every launch — today's behaviour.
    """

    height: int = 240
    width: int = 320
    dtype: str = "double"
    threads_per_block: int = 128
    tile_pixels: int = 640
    frame_group: int = 8
    profile_every: int = 1

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ConfigError(
                f"frame geometry must be positive, got {self.height}x{self.width}"
            )
        resolve_dtype(self.dtype)  # validates
        if self.threads_per_block <= 0 or self.threads_per_block % 32:
            raise ConfigError(
                "threads_per_block must be a positive multiple of the warp "
                f"size (32), got {self.threads_per_block}"
            )
        if self.tile_pixels <= 0 or self.tile_pixels % 32:
            raise ConfigError(
                f"tile_pixels must be a positive multiple of 32, got {self.tile_pixels}"
            )
        if self.frame_group <= 0:
            raise ConfigError(
                f"frame_group must be positive, got {self.frame_group}"
            )
        if self.profile_every < 1:
            raise ConfigError(
                f"profile_every must be >= 1, got {self.profile_every}"
            )

    @property
    def num_pixels(self) -> int:
        """Pixels per frame."""
        return self.height * self.width

    @property
    def np_dtype(self) -> np.dtype:
        """The NumPy dtype of the Gaussian parameters."""
        return resolve_dtype(self.dtype)

    @property
    def itemsize(self) -> int:
        """Bytes per Gaussian parameter (8 for double, 4 for float)."""
        return self.np_dtype.itemsize

    def gaussian_bytes(self, num_gaussians: int) -> int:
        """Bytes of Gaussian state for a whole frame.

        The paper quotes 149 MB for full HD, 3 components, double
        precision (Section IV-D): ``1080*1920*3*3*8``.
        """
        return self.num_pixels * num_gaussians * 3 * self.itemsize

    def replace(self, **kwargs) -> "RunConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Fault policies for the process-parallel path.
FAULT_POLICIES = ("fail", "restart", "serial_fallback")
#: Stage-error policies for the streaming pipeline.
STAGE_ERROR_POLICIES = ("raise", "degrade")


@dataclass(frozen=True)
class FaultPolicy:
    """How the serving path reacts to worker and stage failures.

    Attributes
    ----------
    policy:
        What :class:`~repro.parallel.ParallelMoG` does when a stripe
        worker dies, hangs past ``timeout_s``, or raises:

        * ``"fail"`` (default) — raise a typed
          :class:`~repro.errors.WorkerError` naming the stripe;
        * ``"restart"`` — spawn a replacement worker (restoring the
          stripe's last checkpointed mixture state when
          ``checkpoint=True``) and re-submit the stripe, up to
          ``max_restarts`` times per stripe;
        * ``"serial_fallback"`` — degrade the stripe to an in-process
          :class:`~repro.mog.MoGVectorized` for the rest of the run.
    timeout_s:
        Upper bound on waiting for any single stripe result. This is
        what turns a dead worker from an infinite hang into a handled
        fault.
    probe_timeout_s:
        Upper bound on the startup handshake of each worker, so an
        initializer failure surfaces at construction instead of as an
        opaque hang on the first frame.
    shutdown_timeout_s:
        Grace period for workers to drain and exit on ``close()``
        before escalating to a hard ``terminate()``.
    max_restarts:
        Per-stripe restart budget under ``policy="restart"``; once
        exhausted the fault is raised as a ``WorkerError``.
    checkpoint:
        Ship the stripe's mixture state back with every result so a
        restarted (or fallen-back) stripe resumes exactly where the
        dead worker left off, keeping masks identical to the serial
        implementation. Costs one extra state copy per stripe per
        frame; only active when ``policy`` is not ``"fail"``.
    stage_error:
        What :class:`~repro.core.stream.SurveillancePipeline` does when
        a stage raises mid-step: ``"raise"`` re-raises (leaving the
        frame index uncommitted), ``"degrade"`` returns the last good
        mask flagged as degraded.
    """

    policy: str = "fail"
    timeout_s: float = 30.0
    probe_timeout_s: float = 10.0
    shutdown_timeout_s: float = 5.0
    max_restarts: int = 3
    checkpoint: bool = True
    stage_error: str = "raise"

    def __post_init__(self) -> None:
        if self.policy not in FAULT_POLICIES:
            raise ConfigError(
                f"policy must be one of {FAULT_POLICIES}, got {self.policy!r}"
            )
        if self.stage_error not in STAGE_ERROR_POLICIES:
            raise ConfigError(
                "stage_error must be one of "
                f"{STAGE_ERROR_POLICIES}, got {self.stage_error!r}"
            )
        for name in ("timeout_s", "probe_timeout_s", "shutdown_timeout_s"):
            value = getattr(self, name)
            if not value > 0.0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.max_restarts < 0:
            raise ConfigError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )

    @property
    def wants_checkpoint(self) -> bool:
        """Whether results should carry state back (no overhead under
        ``"fail"``, where the state would never be used)."""
        return self.checkpoint and self.policy != "fail"

    def replace(self, **kwargs) -> "FaultPolicy":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Backpressure policies for a stream's bounded input queue.
BACKPRESSURE_POLICIES = ("block", "drop_oldest", "reject")


@dataclass(frozen=True)
class ServeConfig:
    """Multi-stream server knobs (:class:`repro.serve.StreamServer`).

    Attributes
    ----------
    workers:
        Threads in the shared worker pool. Each worker processes one
        stream's batch at a time; streams are strictly serialised, so
        any ``workers >= 1`` produces per-stream masks identical to a
        serial run.
    max_streams:
        Admission limit: registering more streams raises
        :class:`~repro.errors.ConfigError`.
    queue_capacity:
        Bounded depth of each stream's input queue. A full queue
        engages ``backpressure``.
    backpressure:
        What :meth:`~repro.serve.StreamServer.submit` does when the
        stream's queue is full:

        * ``"block"`` (default) — wait up to ``submit_timeout_s`` for
          space, then raise :class:`~repro.errors.BackpressureError`;
        * ``"drop_oldest"`` — evict the oldest queued frame (counted
          in ``stream.<id>.frames_dropped``) and admit the new one;
        * ``"reject"`` — raise
          :class:`~repro.errors.BackpressureError` immediately.
    batch_frames:
        Frames a worker takes from one stream per scheduling turn
        before the round-robin cursor advances — bounds how long a hot
        stream can hold a worker.
    submit_timeout_s:
        Upper bound on a ``"block"`` submit.
    drain_timeout_s:
        Default upper bound on :meth:`~repro.serve.StreamServer.drain`.
    """

    workers: int = 2
    max_streams: int = 64
    queue_capacity: int = 8
    backpressure: str = "block"
    batch_frames: int = 1
    submit_timeout_s: float = 30.0
    drain_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_streams < 1:
            raise ConfigError(
                f"max_streams must be >= 1, got {self.max_streams}"
            )
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.batch_frames < 1:
            raise ConfigError(
                f"batch_frames must be >= 1, got {self.batch_frames}"
            )
        for name in ("submit_timeout_s", "drain_timeout_s"):
            value = getattr(self, name)
            if not value > 0.0:
                raise ConfigError(f"{name} must be positive, got {value}")

    def replace(self, **kwargs) -> "ServeConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Default latency-histogram bucket upper bounds, in seconds
#: (1 ms .. 30 s, roughly x3 steps — spans a per-stage frame budget
#: from real-time HD to a struggling debug run).
DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Observability knobs for the serving path.

    Attributes
    ----------
    enabled:
        When ``False``, registries hand out no-op instruments and
        snapshots are empty — zero overhead on the hot path.
    latency_buckets_s:
        Ascending upper bounds (seconds) of the latency-histogram
        buckets.
    """

    enabled: bool = True
    latency_buckets_s: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S

    def __post_init__(self) -> None:
        buckets = tuple(float(b) for b in self.latency_buckets_s)
        if not buckets:
            raise ConfigError("latency_buckets_s must not be empty")
        if any(b <= 0 for b in buckets) or list(buckets) != sorted(set(buckets)):
            raise ConfigError(
                "latency_buckets_s must be positive and strictly "
                f"ascending, got {self.latency_buckets_s}"
            )
        object.__setattr__(self, "latency_buckets_s", buckets)

    def replace(self, **kwargs) -> "TelemetryConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)
