"""Multi-scale SSIM, Wang, Simoncelli & Bovik 2003 (paper reference [24]).

The image pair is evaluated at five dyadic scales; the contrast and
structure terms contribute at every scale, the luminance term only at
the coarsest:

    MS-SSIM = l_M(a,b)^w_M * prod_{j=1..M} cs_j(a,b)^w_j

with the exponents from the original paper. Downsampling is a 2x2 box
low-pass followed by decimation, as in the reference implementation.

Binary foreground masks are valid inputs (the paper scores foreground
masks this way); pass them as 0/255 uint8 images.
"""

from __future__ import annotations

import numpy as np

from ..errors import MetricError
from .ssim import WINDOW_SIZE, ssim_and_cs

#: Scale exponents from Wang et al. 2003 (sum to 1).
DEFAULT_WEIGHTS = (0.0448, 0.2856, 0.3001, 0.2363, 0.1333)


def _downsample2(img: np.ndarray) -> np.ndarray:
    """2x2 box filter + decimation (drop a trailing odd row/column)."""
    hh = img.shape[0] - (img.shape[0] % 2)
    ww = img.shape[1] - (img.shape[1] % 2)
    img = img[:hh, :ww]
    return 0.25 * (
        img[0::2, 0::2] + img[1::2, 0::2] + img[0::2, 1::2] + img[1::2, 1::2]
    )


def min_side_for_scales(num_scales: int, window_size: int = WINDOW_SIZE) -> int:
    """Smallest image side supporting ``num_scales`` scales: the image
    at the coarsest scale must still hold an SSIM window."""
    return window_size * 2 ** (num_scales - 1)


def ms_ssim(
    a: np.ndarray,
    b: np.ndarray,
    data_range: float = 255.0,
    weights: tuple[float, ...] = DEFAULT_WEIGHTS,
) -> float:
    """Multi-scale SSIM between two grayscale images (1.0 = identical).

    Raises :class:`~repro.errors.MetricError` when the images are too
    small for the requested number of scales; callers wanting fewer
    scales can pass a shorter ``weights`` tuple (it is renormalised to
    sum to 1 so values stay comparable).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise MetricError(f"image shapes differ: {a.shape} vs {b.shape}")
    if not weights:
        raise MetricError("weights must be non-empty")
    num_scales = len(weights)
    if min(a.shape) < min_side_for_scales(num_scales):
        raise MetricError(
            f"images of shape {a.shape} are too small for {num_scales} "
            f"scales (need >= {min_side_for_scales(num_scales)} per side); "
            "pass fewer weights"
        )
    w = np.asarray(weights, dtype=np.float64)
    if np.any(w <= 0):
        raise MetricError("weights must be positive")
    w = w / w.sum()

    # cs values can be marginally negative in pathological windows; the
    # reference implementation clamps before exponentiation.
    eps = np.finfo(np.float64).eps
    value = 1.0
    for scale in range(num_scales):
        ssim_mean, cs_mean = ssim_and_cs(a, b, data_range=data_range)
        if scale == num_scales - 1:
            value *= max(ssim_mean, eps) ** w[scale]
        else:
            value *= max(cs_mean, eps) ** w[scale]
            a = _downsample2(a)
            b = _downsample2(b)
    return float(value)


def ms_ssim_sequence(
    frames_a: list[np.ndarray] | np.ndarray,
    frames_b: list[np.ndarray] | np.ndarray,
    data_range: float = 255.0,
    weights: tuple[float, ...] = DEFAULT_WEIGHTS,
) -> float:
    """Mean MS-SSIM over a sequence of frame pairs.

    This is how Table IV of the paper scores a whole run: the
    foreground (or background) frames of an optimized implementation
    against the CPU double-precision ground truth, averaged over frames.
    """
    if len(frames_a) != len(frames_b):
        raise MetricError(
            f"sequences have different lengths: {len(frames_a)} vs {len(frames_b)}"
        )
    if len(frames_a) == 0:
        raise MetricError("sequences are empty")
    scores = [
        ms_ssim(fa, fb, data_range=data_range, weights=weights)
        for fa, fb in zip(frames_a, frames_b)
    ]
    return float(np.mean(scores))
