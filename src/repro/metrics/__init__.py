"""Image-quality and detection metrics.

The paper validates every optimization level against the
double-precision CPU output using MS-SSIM (its reference [24], Wang et
al. 2003); this package implements SSIM and MS-SSIM from those papers
plus standard detection metrics (precision / recall / F1 / IoU) against
the synthetic ground truth.
"""

from .basic import mse, psnr
from .foreground import ForegroundScore, foreground_score
from .ms_ssim import ms_ssim
from .ssim import ssim

__all__ = [
    "mse",
    "psnr",
    "ssim",
    "ms_ssim",
    "ForegroundScore",
    "foreground_score",
]
