"""Pixelwise error metrics (MSE / PSNR).

The paper contrasts MS-SSIM with "traditional methods such as mean
squared error"; these are provided both for that comparison and as
cheap sanity checks in tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import MetricError


def _validate_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise MetricError(f"image shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise MetricError("images are empty")
    return a, b


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two images."""
    a, b = _validate_pair(a, b)
    return float(np.mean((a - b) ** 2))


def psnr(a: np.ndarray, b: np.ndarray, data_range: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    if data_range <= 0:
        raise MetricError(f"data_range must be positive, got {data_range}")
    err = mse(a, b)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / err))
