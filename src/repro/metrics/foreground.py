"""Detection metrics for foreground masks against ground truth.

The paper has no ground truth (real footage) and scores similarity to
the CPU output instead; our synthetic scenes *do* have exact masks, so
examples and tests can additionally report precision / recall / F1 /
IoU — the metrics a downstream surveillance user actually cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MetricError


@dataclass(frozen=True)
class ForegroundScore:
    """Confusion-matrix summary of a predicted foreground mask."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was predicted."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there is no true foreground."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) else 0.0

    @property
    def iou(self) -> float:
        """Intersection over union (Jaccard index); 1.0 when both masks
        are empty."""
        union = self.true_positives + self.false_positives + self.false_negatives
        return self.true_positives / union if union else 1.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        return (self.true_positives + self.true_negatives) / total

    def __add__(self, other: "ForegroundScore") -> "ForegroundScore":
        """Accumulate confusion counts across frames."""
        return ForegroundScore(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
            self.true_negatives + other.true_negatives,
        )


def foreground_score(predicted: np.ndarray, truth: np.ndarray) -> ForegroundScore:
    """Score a predicted mask (any nonzero = foreground) against truth."""
    pred = np.asarray(predicted) != 0
    true = np.asarray(truth) != 0
    if pred.shape != true.shape:
        raise MetricError(
            f"mask shapes differ: {pred.shape} vs {true.shape}"
        )
    if pred.size == 0:
        raise MetricError("masks are empty")
    tp = int(np.count_nonzero(pred & true))
    fp = int(np.count_nonzero(pred & ~true))
    fn = int(np.count_nonzero(~pred & true))
    tn = int(np.count_nonzero(~pred & ~true))
    return ForegroundScore(tp, fp, fn, tn)


def score_sequence(
    predicted: list[np.ndarray] | np.ndarray,
    truth: list[np.ndarray] | np.ndarray,
) -> ForegroundScore:
    """Accumulate :func:`foreground_score` over aligned sequences."""
    if len(predicted) != len(truth):
        raise MetricError(
            f"sequences have different lengths: {len(predicted)} vs {len(truth)}"
        )
    if len(predicted) == 0:
        raise MetricError("sequences are empty")
    total = ForegroundScore(0, 0, 0, 0)
    for p, t in zip(predicted, truth):
        total = total + foreground_score(p, t)
    return total
