"""Structural similarity (SSIM), Wang, Bovik, Sheikh & Simoncelli 2004.

Implements the reference formulation: local statistics under an 11x11
Gaussian window with sigma = 1.5, stability constants
``C1 = (K1 L)^2``, ``C2 = (K2 L)^2`` with ``K1 = 0.01``, ``K2 = 0.03``.

:func:`ssim_and_cs` also returns the mean contrast-structure term,
which is what MS-SSIM consumes at the intermediate scales.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..errors import MetricError

#: Reference window parameters from the SSIM paper.
WINDOW_SIZE = 11
WINDOW_SIGMA = 1.5
K1 = 0.01
K2 = 0.03


def _gaussian_window(size: int = WINDOW_SIZE, sigma: float = WINDOW_SIGMA) -> np.ndarray:
    """Normalised 2-D Gaussian window (separable, computed as outer
    product of the 1-D kernel)."""
    half = (size - 1) / 2.0
    coords = np.arange(size) - half
    g = np.exp(-(coords**2) / (2.0 * sigma**2))
    g /= g.sum()
    return np.outer(g, g)


def _filter(img: np.ndarray, window: np.ndarray) -> np.ndarray:
    # 'reflect' borders: every output pixel sees a full window, matching
    # the common implementation choice for whole-image SSIM.
    return ndimage.convolve(img, window, mode="reflect")


def ssim_and_cs(
    a: np.ndarray,
    b: np.ndarray,
    data_range: float = 255.0,
    window_size: int = WINDOW_SIZE,
    sigma: float = WINDOW_SIGMA,
) -> tuple[float, float]:
    """Return ``(mean SSIM, mean contrast-structure)`` for two images."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise MetricError("SSIM expects 2-D grayscale images")
    if a.shape != b.shape:
        raise MetricError(f"image shapes differ: {a.shape} vs {b.shape}")
    if min(a.shape) < window_size:
        raise MetricError(
            f"images must be at least {window_size} pixels per side, got {a.shape}"
        )
    if data_range <= 0:
        raise MetricError(f"data_range must be positive, got {data_range}")

    window = _gaussian_window(window_size, sigma)
    c1 = (K1 * data_range) ** 2
    c2 = (K2 * data_range) ** 2

    mu_a = _filter(a, window)
    mu_b = _filter(b, window)
    mu_aa = mu_a * mu_a
    mu_bb = mu_b * mu_b
    mu_ab = mu_a * mu_b
    sigma_aa = _filter(a * a, window) - mu_aa
    sigma_bb = _filter(b * b, window) - mu_bb
    sigma_ab = _filter(a * b, window) - mu_ab

    cs_map = (2.0 * sigma_ab + c2) / (sigma_aa + sigma_bb + c2)
    luminance = (2.0 * mu_ab + c1) / (mu_aa + mu_bb + c1)
    ssim_map = luminance * cs_map
    return float(ssim_map.mean()), float(cs_map.mean())


def ssim(a: np.ndarray, b: np.ndarray, data_range: float = 255.0) -> float:
    """Mean SSIM index between two grayscale images (1.0 = identical)."""
    return ssim_and_cs(a, b, data_range=data_range)[0]
