"""Object tracking over foreground masks (the downstream consumer)."""

from .tracker import CentroidTracker, Track, TrackerParams

__all__ = ["CentroidTracker", "Track", "TrackerParams"]
