"""Centroid tracking over per-frame foreground blobs.

Background subtraction is "the first stage in many vision applications"
(the paper's opening line); the canonical second stage is associating
the per-frame blobs into object *tracks*. This module implements the
classic greedy nearest-centroid tracker:

* blobs come from :func:`repro.post.connected_components` (optionally
  after :func:`repro.post.clean_mask`);
* each existing track predicts its next position by constant velocity;
* blob↔track pairs are matched greedily by distance under a gate;
* unmatched blobs open new (tentative) tracks, which are *confirmed*
  after ``min_hits`` consecutive associations; unmatched tracks coast
  and die after ``max_misses`` frames.

It is deliberately simple — no Kalman filter, no appearance model —
but complete enough to turn mask sequences into trajectories, which is
what the examples and the detection-quality tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..post.morphology import Component, connected_components


@dataclass(frozen=True)
class TrackerParams:
    """Association and lifecycle thresholds."""

    max_distance: float = 24.0  # gate: max centroid jump per frame (px)
    max_misses: int = 4         # frames a track may coast unmatched
    min_hits: int = 3           # associations before a track is confirmed
    min_area: int = 4           # ignore blobs smaller than this

    def __post_init__(self) -> None:
        if self.max_distance <= 0:
            raise ConfigError("max_distance must be positive")
        if self.max_misses < 0 or self.min_hits < 1:
            raise ConfigError("bad lifecycle thresholds")
        if self.min_area < 0:
            raise ConfigError("min_area must be non-negative")


@dataclass
class Track:
    """One tracked object."""

    track_id: int
    positions: list[tuple[float, float]] = field(default_factory=list)
    frames: list[int] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    confirmed: bool = False
    alive: bool = True
    last_area: int = 0

    @property
    def position(self) -> tuple[float, float]:
        return self.positions[-1]

    @property
    def velocity(self) -> tuple[float, float]:
        """Per-frame velocity from the last two observations."""
        if len(self.positions) < 2:
            return (0.0, 0.0)
        (r0, c0), (r1, c1) = self.positions[-2], self.positions[-1]
        dt = max(self.frames[-1] - self.frames[-2], 1)
        return ((r1 - r0) / dt, (c1 - c0) / dt)

    def predict(self, frame: int) -> tuple[float, float]:
        """Constant-velocity prediction for ``frame``."""
        vr, vc = self.velocity
        dt = frame - self.frames[-1]
        r, c = self.position
        return (r + vr * dt, c + vc * dt)

    @property
    def length(self) -> int:
        return len(self.positions)

    def total_displacement(self) -> float:
        if len(self.positions) < 2:
            return 0.0
        first = np.array(self.positions[0])
        last = np.array(self.positions[-1])
        return float(np.linalg.norm(last - first))


class CentroidTracker:
    """Greedy nearest-centroid multi-object tracker."""

    def __init__(self, params: TrackerParams | None = None) -> None:
        self.params = params or TrackerParams()
        self.tracks: list[Track] = []
        self._next_id = 1
        self.frame_index = -1

    # ------------------------------------------------------------------
    @property
    def active_tracks(self) -> list[Track]:
        """Alive, confirmed tracks."""
        return [t for t in self.tracks if t.alive and t.confirmed]

    def update(
        self, mask: np.ndarray, frame_index: int | None = None
    ) -> list[Track]:
        """Consume one foreground mask; returns the active tracks."""
        self.frame_index = (
            self.frame_index + 1 if frame_index is None else frame_index
        )
        blobs = [
            c for c in connected_components(mask)
            if c.area >= self.params.min_area
        ]
        self._associate(blobs)
        return self.active_tracks

    # ------------------------------------------------------------------
    def _associate(self, blobs: list[Component]) -> None:
        t_now = self.frame_index
        live = [t for t in self.tracks if t.alive]
        if live and blobs:
            predictions = np.array([t.predict(t_now) for t in live])
            centroids = np.array([b.centroid for b in blobs])
            dist = np.linalg.norm(
                predictions[:, None, :] - centroids[None, :, :], axis=2
            )
            # Greedy: repeatedly take the globally closest pair in gate.
            # The sort must be stable so equidistant pairs break ties by
            # flattened index, i.e. (track id, blob order) — the default
            # introsort reorders ties on larger matrices, which made
            # associations depend on matrix size and run-to-run layout.
            matched_tracks: set[int] = set()
            matched_blobs: set[int] = set()
            order = np.dstack(
                np.unravel_index(
                    np.argsort(dist, axis=None, kind="stable"), dist.shape
                )
            )[0]
            for ti, bi in order:
                if dist[ti, bi] > self.params.max_distance:
                    break
                if ti in matched_tracks or bi in matched_blobs:
                    continue
                matched_tracks.add(int(ti))
                matched_blobs.add(int(bi))
                self._hit(live[ti], blobs[bi])
        else:
            matched_tracks, matched_blobs = set(), set()

        for i, track in enumerate(live):
            if i not in matched_tracks:
                self._miss(track)
        for j, blob in enumerate(blobs):
            if j not in matched_blobs:
                self._spawn(blob)

    def _hit(self, track: Track, blob: Component) -> None:
        track.positions.append(blob.centroid)
        track.frames.append(self.frame_index)
        track.hits += 1
        track.misses = 0
        track.last_area = blob.area
        if track.hits >= self.params.min_hits:
            track.confirmed = True

    def _miss(self, track: Track) -> None:
        track.misses += 1
        if track.misses > self.params.max_misses:
            track.alive = False

    def _spawn(self, blob: Component) -> None:
        track = Track(track_id=self._next_id)
        self._next_id += 1
        track.positions.append(blob.centroid)
        track.frames.append(self.frame_index)
        track.hits = 1
        track.last_area = blob.area
        if self.params.min_hits <= 1:
            track.confirmed = True
        self.tracks.append(track)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        confirmed = [t for t in self.tracks if t.confirmed]
        lines = [
            f"{len(confirmed)} confirmed tracks over "
            f"{self.frame_index + 1} frames:"
        ]
        for t in confirmed:
            lines.append(
                f"  track {t.track_id}: frames {t.frames[0]}-{t.frames[-1]}, "
                f"{t.length} observations, displacement "
                f"{t.total_displacement():.1f} px"
            )
        return "\n".join(lines)
