"""CUDA-C source generation for users who do have a GPU."""

from .generator import CudaGenConfig, generate_kernel, generate_project

__all__ = ["CudaGenConfig", "generate_kernel", "generate_project"]
