"""Moving foreground objects (sprites) with exact ground-truth masks.

A :class:`Sprite` is a small intensity patch plus a boolean support
mask; a :class:`SpriteTrack` moves it along a parametric path. The
renderer composites sprites over a background frame and returns the
union of their supports as the ground-truth foreground mask — the thing
real surveillance footage never gives you.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import VideoError
from ..utils.rng import rng_from_seed

#: A path maps frame index -> (row, col) of the sprite's top-left corner.
PathFn = Callable[[int], tuple[float, float]]


@dataclass(frozen=True)
class Sprite:
    """An intensity patch with a support mask.

    Attributes
    ----------
    intensity:
        2-D float array of pixel values in [0, 255].
    support:
        Boolean array, same shape; True where the sprite is opaque.
    """

    intensity: np.ndarray
    support: np.ndarray

    def __post_init__(self) -> None:
        if self.intensity.ndim != 2:
            raise VideoError("sprite intensity must be 2-D")
        if self.intensity.shape != self.support.shape:
            raise VideoError(
                "sprite intensity and support shapes differ: "
                f"{self.intensity.shape} vs {self.support.shape}"
            )
        if self.support.dtype != np.bool_:
            raise VideoError("sprite support must be boolean")

    @property
    def shape(self) -> tuple[int, int]:
        return self.intensity.shape

    @staticmethod
    def rectangle(
        height: int, width: int, intensity: float = 200.0
    ) -> "Sprite":
        """A solid rectangle of constant intensity."""
        if height <= 0 or width <= 0:
            raise VideoError("sprite dimensions must be positive")
        return Sprite(
            intensity=np.full((height, width), float(intensity)),
            support=np.ones((height, width), dtype=bool),
        )

    @staticmethod
    def disk(radius: int, intensity: float = 200.0) -> "Sprite":
        """A filled disk of constant intensity."""
        if radius <= 0:
            raise VideoError("sprite radius must be positive")
        d = 2 * radius + 1
        yy, xx = np.mgrid[0:d, 0:d]
        support = (yy - radius) ** 2 + (xx - radius) ** 2 <= radius**2
        return Sprite(
            intensity=np.full((d, d), float(intensity)), support=support
        )

    @staticmethod
    def textured(
        height: int,
        width: int,
        base: float = 180.0,
        contrast: float = 40.0,
        seed: int | np.random.Generator | None = None,
    ) -> "Sprite":
        """A rectangle with random texture — exercises non-uniform
        foreground (harder for quality metrics than flat patches)."""
        rng = rng_from_seed(seed, default=7)
        tex = base + contrast * (rng.random((height, width)) - 0.5)
        return Sprite(
            intensity=np.clip(tex, 0.0, 255.0),
            support=np.ones((height, width), dtype=bool),
        )


def linear_path(
    start: tuple[float, float], velocity: tuple[float, float]
) -> PathFn:
    """Constant-velocity path: ``pos(t) = start + t * velocity``."""
    r0, c0 = start
    vr, vc = velocity
    return lambda t: (r0 + vr * t, c0 + vc * t)


def bounce_path(
    start: tuple[float, float],
    velocity: tuple[float, float],
    bounds: tuple[int, int],
    size: tuple[int, int],
) -> PathFn:
    """Path that reflects off the frame borders (triangle-wave motion).

    ``bounds`` is the frame shape and ``size`` the sprite shape; the
    sprite stays fully inside the frame.
    """
    r0, c0 = start
    vr, vc = velocity
    hr = max(bounds[0] - size[0], 1)
    wc = max(bounds[1] - size[1], 1)

    def tri(x: float, period: float) -> float:
        x = x % (2.0 * period)
        return x if x <= period else 2.0 * period - x

    return lambda t: (tri(r0 + vr * t, hr), tri(c0 + vc * t, wc))


def stationary_path(pos: tuple[float, float]) -> PathFn:
    """An object that does not move — MoG should eventually absorb it
    into the background; useful for adaptation tests."""
    return lambda t: pos


@dataclass
class SpriteTrack:
    """A sprite bound to a path, active over a frame interval.

    ``shadow_offset`` makes the sprite cast a hard shadow: the sprite's
    footprint, shifted by ``(rows, cols)``, darkens the scene by the
    multiplicative ``shadow_gain`` before sprites are composited. The
    shadow is *not* part of the ground-truth mask — it is background
    that merely changed intensity, exactly the case the fused shadow
    stage suppresses and naive thresholding mislabels.
    """

    sprite: Sprite
    path: PathFn
    start_frame: int = 0
    end_frame: int | None = None  # exclusive; None = forever
    shadow_offset: tuple[int, int] | None = None
    shadow_gain: float = 0.55
    _id: int = field(default=0, compare=False)

    def active(self, t: int) -> bool:
        if t < self.start_frame:
            return False
        return self.end_frame is None or t < self.end_frame

    def position(self, t: int) -> tuple[int, int]:
        r, c = self.path(t)
        return int(round(r)), int(round(c))


def render_tracks(
    background: np.ndarray,
    tracks: list[SpriteTrack],
    t: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Composite all active tracks over ``background`` at frame ``t``.

    Returns ``(frame_float, truth_mask)``; sprites partially outside the
    frame are clipped. The input background is not modified.
    """
    frame = background.astype(np.float64, copy=True)
    truth = np.zeros(background.shape, dtype=bool)
    hh, ww = background.shape
    # Shadows first: every shadow darkens the clean background, then
    # sprites composite on top (an object is never darkened by its own
    # shadow). Shadows stay out of the truth mask by design.
    for track in tracks:
        if not track.active(t) or track.shadow_offset is None:
            continue
        r, c = track.position(t)
        r += track.shadow_offset[0]
        c += track.shadow_offset[1]
        sh, sw = track.sprite.shape
        fr0, fc0 = max(r, 0), max(c, 0)
        fr1, fc1 = min(r + sh, hh), min(c + sw, ww)
        if fr0 >= fr1 or fc0 >= fc1:
            continue
        sr0, sc0 = fr0 - r, fc0 - c
        sr1, sc1 = sr0 + (fr1 - fr0), sc0 + (fc1 - fc0)
        sup = track.sprite.support[sr0:sr1, sc0:sc1]
        region = frame[fr0:fr1, fc0:fc1]
        region[sup] = region[sup] * track.shadow_gain
    for track in tracks:
        if not track.active(t):
            continue
        r, c = track.position(t)
        sh, sw = track.sprite.shape
        # Clip the sprite to the frame.
        fr0, fc0 = max(r, 0), max(c, 0)
        fr1, fc1 = min(r + sh, hh), min(c + sw, ww)
        if fr0 >= fr1 or fc0 >= fc1:
            continue  # fully outside
        sr0, sc0 = fr0 - r, fc0 - c
        sr1, sc1 = sr0 + (fr1 - fr0), sc0 + (fc1 - fc0)
        sup = track.sprite.support[sr0:sr1, sc0:sc1]
        frame[fr0:fr1, fc0:fc1][sup] = track.sprite.intensity[sr0:sr1, sc0:sc1][sup]
        truth[fr0:fr1, fc0:fc1] |= sup
    return frame, truth
