"""Workload characterisation: per-pixel temporal statistics.

The substitution argument in DESIGN.md §2 rests on the synthetic scenes
having the *statistics* MoG consumes — per-pixel noise and genuine
multi-modality. This module measures those statistics from any frame
sequence, so the claim is checkable (tests do) and users can
characterise their own footage before picking parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import VideoError


@dataclass(frozen=True)
class SceneStats:
    """Per-pixel temporal statistics of a frame sequence."""

    num_frames: int
    temporal_sd: np.ndarray      # per-pixel sd over time
    modality: np.ndarray         # per-pixel estimated mode count
    flip_rate: np.ndarray        # per-pixel rate of >delta jumps

    @property
    def mean_temporal_sd(self) -> float:
        return float(self.temporal_sd.mean())

    @property
    def multimodal_fraction(self) -> float:
        """Share of pixels with more than one mode."""
        return float((self.modality > 1).mean())

    @property
    def mean_modality(self) -> float:
        return float(self.modality.mean())

    def summary(self) -> str:
        return (
            f"{self.num_frames} frames: temporal sd "
            f"{self.mean_temporal_sd:.2f}, multimodal pixels "
            f"{self.multimodal_fraction * 100:.1f}%, mean modes/pixel "
            f"{self.mean_modality:.2f}, mode-flip rate "
            f"{float(self.flip_rate.mean()) * 100:.1f}%/frame"
        )


def estimate_modality(
    stack: np.ndarray, gap: float = 12.0, min_weight: float = 0.05
) -> np.ndarray:
    """Estimate the number of intensity modes per pixel.

    A simple histogram-clustering: per pixel, sorted observations are
    split wherever consecutive values are more than ``gap`` apart;
    clusters holding at least ``min_weight`` of the frames count as
    modes. Exact for the generator's well-separated modes; a reasonable
    heuristic elsewhere.
    """
    if stack.ndim != 3:
        raise VideoError(f"expected (T, H, W), got shape {stack.shape}")
    t, h, w = stack.shape
    if t < 2:
        raise VideoError("need at least 2 frames to estimate modality")
    flat = np.sort(
        stack.reshape(t, h * w).astype(np.float64), axis=0
    )  # (T, N), per-pixel sorted
    jumps = np.diff(flat, axis=0) > gap           # (T-1, N)
    # Cluster boundaries; cluster sizes via segment lengths.
    boundaries = np.vstack(
        [np.ones((1, h * w), dtype=bool), jumps]
    )  # start-of-cluster markers
    cluster_id = np.cumsum(boundaries, axis=0) - 1  # (T, N)
    num_clusters = cluster_id[-1] + 1
    modes = np.zeros(h * w, dtype=np.int64)
    min_count = max(int(np.ceil(min_weight * t)), 1)
    # Count, per pixel, clusters with >= min_count members.
    max_k = int(num_clusters.max())
    for k in range(max_k):
        size_k = (cluster_id == k).sum(axis=0)
        modes += (size_k >= min_count).astype(np.int64)
    return modes.reshape(h, w)


def scene_stats(
    frames, gap: float = 12.0, min_weight: float = 0.05
) -> SceneStats:
    """Characterise a sequence (an iterable or a (T, H, W) stack)."""
    stack = np.stack([np.asarray(f) for f in frames]) if not isinstance(
        frames, np.ndarray
    ) else frames
    if stack.ndim != 3:
        raise VideoError(f"expected (T, H, W), got shape {stack.shape}")
    if stack.shape[0] < 2:
        raise VideoError("need at least 2 frames")
    data = stack.astype(np.float64)
    temporal_sd = data.std(axis=0)
    modality = estimate_modality(stack, gap=gap, min_weight=min_weight)
    flips = (np.abs(np.diff(data, axis=0)) > gap).mean(axis=0)
    return SceneStats(
        num_frames=stack.shape[0],
        temporal_sd=temporal_sd,
        modality=modality,
        flip_rate=flips,
    )
