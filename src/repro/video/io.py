"""Frame sources and sequence I/O.

A *frame source* is anything with ``shape`` and ``frame(t)``;
:class:`SyntheticVideo` satisfies it, and :class:`ArraySource` adapts a
prerecorded ``(T, H, W)`` array. :func:`save_sequence` /
:func:`load_sequence` round-trip sequences (with optional ground truth)
through compressed ``.npz`` files so experiments can pin their inputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import VideoError
from ..utils.arrays import as_gray_frame


@runtime_checkable
class FrameSource(Protocol):
    """Minimal interface the pipeline consumes."""

    @property
    def shape(self) -> tuple[int, int]: ...

    def frame(self, t: int) -> np.ndarray: ...


class ArraySource:
    """Adapt a prerecorded ``(T, H, W)`` uint8 array to ``FrameSource``.

    Also accepts a list of 2-D frames (validated and stacked).
    """

    def __init__(self, frames: np.ndarray | list[np.ndarray]) -> None:
        if isinstance(frames, list):
            if not frames:
                raise VideoError("frame list is empty")
            frames = np.stack([as_gray_frame(f) for f in frames], axis=0)
        arr = np.asarray(frames)
        if arr.ndim != 3:
            raise VideoError(
                f"expected a (T, H, W) stack of frames, got shape {arr.shape}"
            )
        if arr.dtype != np.uint8:
            arr = np.stack([as_gray_frame(f) for f in arr], axis=0)
        self._frames = arr

    @property
    def shape(self) -> tuple[int, int]:
        return self._frames.shape[1:]

    def __len__(self) -> int:
        return self._frames.shape[0]

    @property
    def num_frames(self) -> int:
        return self._frames.shape[0]

    def frame(self, t: int) -> np.ndarray:
        if not 0 <= t < len(self):
            raise VideoError(f"frame index {t} out of range [0, {len(self)})")
        return self._frames[t]

    def frames(self, count: int, start: int = 0):
        for t in range(start, start + count):
            yield self.frame(t)


def record(source: FrameSource, num_frames: int, start: int = 0) -> ArraySource:
    """Materialise ``num_frames`` frames of any source into memory."""
    if num_frames <= 0:
        raise VideoError(f"num_frames must be positive, got {num_frames}")
    stack = np.stack(
        [as_gray_frame(source.frame(t)) for t in range(start, start + num_frames)]
    )
    return ArraySource(stack)


def save_sequence(
    path: str | Path,
    frames: np.ndarray,
    truth: np.ndarray | None = None,
    **metadata: float,
) -> None:
    """Save a ``(T, H, W)`` sequence (and optional truth masks) as npz."""
    frames = np.asarray(frames)
    if frames.ndim != 3:
        raise VideoError(f"expected (T, H, W) frames, got shape {frames.shape}")
    if frames.dtype.kind == "f" and not np.isfinite(frames).all():
        # The uint8 cast below would silently turn NaN/inf into garbage
        # pixels that only surface frames later, far from the cause.
        raise VideoError("frame sequence contains non-finite values")
    payload: dict[str, np.ndarray] = {"frames": frames.astype(np.uint8)}
    if truth is not None:
        truth = np.asarray(truth)
        if truth.shape != frames.shape:
            raise VideoError(
                f"truth shape {truth.shape} != frames shape {frames.shape}"
            )
        payload["truth"] = truth.astype(bool)
    if metadata:
        payload["metadata_keys"] = np.array(sorted(metadata), dtype="U64")
        payload["metadata_values"] = np.array(
            [float(metadata[k]) for k in sorted(metadata)]
        )
    np.savez_compressed(Path(path), **payload)


def load_sequence(
    path: str | Path,
) -> tuple[ArraySource, np.ndarray | None, dict[str, float]]:
    """Load a sequence saved by :func:`save_sequence`.

    Returns ``(source, truth_or_None, metadata)``.
    """
    with np.load(Path(path)) as data:
        if "frames" not in data:
            raise VideoError(f"{path} is not a saved frame sequence")
        frames = data["frames"]
        truth = data["truth"] if "truth" in data else None
        metadata: dict[str, float] = {}
        if "metadata_keys" in data:
            metadata = dict(
                zip(data["metadata_keys"].tolist(), data["metadata_values"].tolist())
            )
    return ArraySource(frames), truth, metadata
