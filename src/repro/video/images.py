"""Minimal image file I/O (PGM/PPM, binary variants).

Netpbm formats need no third-party codecs, which keeps this library's
dependency surface at numpy+scipy while still letting users *look* at
frames, masks and background models (`eog out/mask_0042.pgm`, or any
image viewer). Grayscale arrays become P5 (PGM), RGB arrays P6 (PPM).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import VideoError


def write_image(path: str | Path, image: np.ndarray) -> Path:
    """Write a uint8 image: (H, W) -> PGM, (H, W, 3) -> PPM.

    Boolean arrays are accepted and rendered 0/255. The suffix is
    corrected to match the format if needed; the final path is
    returned.
    """
    arr = np.asarray(image)
    if arr.dtype == np.bool_:
        arr = arr.astype(np.uint8) * 255
    if arr.dtype != np.uint8:
        raise VideoError(f"images must be uint8 or bool, got {arr.dtype}")
    path = Path(path)
    if arr.ndim == 2:
        magic, suffix = b"P5", ".pgm"
    elif arr.ndim == 3 and arr.shape[2] == 3:
        magic, suffix = b"P6", ".ppm"
    else:
        raise VideoError(
            f"expected (H, W) or (H, W, 3), got shape {arr.shape}"
        )
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise VideoError("image is empty")
    if path.suffix.lower() != suffix:
        path = path.with_suffix(suffix)
    header = b"%s\n%d %d\n255\n" % (magic, arr.shape[1], arr.shape[0])
    path.write_bytes(header + np.ascontiguousarray(arr).tobytes())
    return path


def read_image(path: str | Path) -> np.ndarray:
    """Read a binary PGM (P5) or PPM (P6) written by :func:`write_image`
    (or any 8-bit Netpbm file with whitespace/comment headers)."""
    data = Path(path).read_bytes()
    if data[:2] not in (b"P5", b"P6"):
        raise VideoError(f"{path}: not a binary PGM/PPM file")
    channels = 1 if data[:2] == b"P5" else 3

    # Parse header tokens: magic, width, height, maxval (comments allowed).
    tokens: list[int] = []
    pos = 2
    while len(tokens) < 3:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        if start == pos:
            raise VideoError(f"{path}: truncated header")
        tokens.append(int(data[start:pos]))
    pos += 1  # the single whitespace after maxval
    width, height, maxval = tokens
    if maxval != 255:
        raise VideoError(f"{path}: only 8-bit images supported, maxval={maxval}")
    expected = width * height * channels
    if len(data) - pos < expected:
        raise VideoError(f"{path}: truncated pixel data")
    pixels = np.frombuffer(data, dtype=np.uint8, count=expected, offset=pos)
    shape = (height, width) if channels == 1 else (height, width, 3)
    return pixels.reshape(shape).copy()


def dump_run(
    directory: str | Path,
    frames,
    masks,
    background: np.ndarray | None = None,
    stride: int = 1,
    prefix: str = "",
) -> list[Path]:
    """Dump a run's frames and masks side by side for eyeballing.

    Writes ``<prefix>frame_NNNN`` / ``<prefix>mask_NNNN`` every
    ``stride`` frames (plus ``<prefix>background`` if given); returns
    the written paths.
    """
    if stride < 1:
        raise VideoError(f"stride must be >= 1, got {stride}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for t, (frame, mask) in enumerate(zip(frames, masks)):
        if t % stride:
            continue
        written.append(
            write_image(directory / f"{prefix}frame_{t:04d}", frame)
        )
        written.append(write_image(directory / f"{prefix}mask_{t:04d}", mask))
    if background is not None:
        written.append(
            write_image(
                directory / f"{prefix}background",
                np.clip(np.rint(np.asarray(background, dtype=np.float64)),
                        0, 255).astype(np.uint8),
            )
        )
    return written
