"""Color video adapter: RGB frames from the grayscale scene machinery.

A :class:`ColorizedVideo` wraps any grayscale frame source and applies
a static per-pixel RGB tint to the *background* while rendering the
foreground sprites in their own colors — producing deterministic color
footage with the same exact ground-truth masks, for the color MoG
extension (:mod:`repro.mog.color`).
"""

from __future__ import annotations

import numpy as np

from ..errors import VideoError
from ..utils.rng import rng_from_seed
from .synthetic import SyntheticVideo, _smooth_random_field


class ColorizedVideo:
    """RGB frames derived from a grayscale :class:`SyntheticVideo`.

    The background tint is a smooth random RGB field (each channel a
    multiplier in ``[low, high]``); sprite pixels get a per-track solid
    color modulated by the underlying gray intensity.
    """

    def __init__(
        self,
        base: SyntheticVideo,
        seed: int | None = None,
        tint_low: float = 0.55,
        tint_high: float = 1.0,
        sprite_colors: list[tuple[float, float, float]] | None = None,
    ) -> None:
        if not 0.0 <= tint_low <= tint_high <= 1.0:
            raise VideoError(
                f"tints must satisfy 0 <= low <= high <= 1, got "
                f"{tint_low}, {tint_high}"
            )
        self.base = base
        rng = rng_from_seed(seed, default=base.config.seed + 101)
        hh, ww = base.shape
        span = tint_high - tint_low
        self._tint = np.stack(
            [
                tint_low + span * _smooth_random_field((hh, ww), 20, rng)
                for _ in range(3)
            ],
            axis=2,
        )
        default_colors = [
            (1.0, 0.35, 0.3), (0.3, 0.5, 1.0), (0.35, 1.0, 0.4),
            (1.0, 0.9, 0.3),
        ]
        self._sprite_colors = sprite_colors or default_colors

    @property
    def shape(self) -> tuple[int, int]:
        return self.base.shape

    @property
    def num_frames(self) -> int | None:
        return self.base.num_frames

    def frame_with_truth(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """RGB frame ``t`` as ``(uint8 (H,W,3), bool mask)``."""
        gray, truth = self.base.frame_with_truth(t)
        rgb = gray[:, :, None] * self._tint
        # Recolor the foreground: per-track colors, ordered by track.
        for i, track in enumerate(self.base.tracks):
            if not track.active(t):
                continue
            r, c = track.position(t)
            sh, sw = track.sprite.shape
            hh, ww = self.shape
            fr0, fc0 = max(r, 0), max(c, 0)
            fr1, fc1 = min(r + sh, hh), min(c + sw, ww)
            if fr0 >= fr1 or fc0 >= fc1:
                continue
            sup = track.sprite.support[fr0 - r:fr1 - r, fc0 - c:fc1 - c]
            color = np.array(
                self._sprite_colors[i % len(self._sprite_colors)]
            )
            region = rgb[fr0:fr1, fc0:fc1]
            region[sup] = gray[fr0:fr1, fc0:fc1][sup, None] * color[None, :]
        return np.clip(np.rint(rgb), 0, 255).astype(np.uint8), truth

    def frame(self, t: int) -> np.ndarray:
        return self.frame_with_truth(t)[0]

    def frames(self, count: int, start: int = 0):
        for t in range(start, start + count):
            yield self.frame(t)
