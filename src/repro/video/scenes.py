"""Prebuilt scenarios for the application domains the paper motivates.

The paper's introduction names three deployment domains for background
subtraction: video surveillance, industry/traffic vision, and patient
monitoring. Each builder returns a ready :class:`SyntheticVideo` whose
statistics stress a different aspect of MoG:

* :func:`surveillance_scene` — pedestrians (slow blobs) crossing a
  noisy outdoor scene with a flickering neon region (bimodal pixels).
* :func:`traffic_scene` — fast rectangular vehicles on multiple lanes,
  high object density, slow illumination drift (passing clouds).
* :func:`patient_room_scene` — one slow-moving subject, a monitor with
  periodic flicker, very low noise (indoor camera).

The *stressor* scenes drive the model-quality matrix
(``repro experiments models``): each violates one assumption a
background model makes, with unchanged ground truth, so the matrix
shows where each family's accuracy collapses:

* :func:`static_scene` — the control cell: clean static background.
* :func:`jitter_scene` — camera shake (the fixed-camera assumption).
* :func:`illumination_scene` — a sudden global illumination step.
* :func:`rain_scene` — rain/snow streaks (unlearnable dynamic texture).
* :func:`shadow_scene` — objects casting hard shadows that are
  ground-truth background.
* :func:`ptz_scene` — a panning PTZ viewport over a wider panorama
  (pure apparent motion; per-pixel distributions never converge).
"""

from __future__ import annotations

from .objects import Sprite, SpriteTrack, bounce_path, linear_path
from .synthetic import (
    DriftRegion,
    FlickerRegion,
    IlluminationStep,
    PanningVideo,
    RainLayer,
    SceneConfig,
    SyntheticVideo,
)


def evaluation_scene(
    height: int = 240, width: int = 320, seed: int = 5, num_frames: int | None = None
) -> SyntheticVideo:
    """The canonical workload of the paper-reproduction benchmarks.

    Mimics the statistics of the paper's real surveillance footage:
    near-ubiquitous per-pixel background multi-modality (so MoG keeps
    several live components per pixel and warps are divergent in the
    branchy kernels, as on real video), moderate sensor noise, and two
    moving objects with ground truth.
    """
    cfg = SceneConfig(
        height=height, width=width, noise_sd=3.0, seed=seed,
        background_low=50.0, background_high=190.0,
        bimodal_fraction=0.9, bimodal_delta=25.0,
    )
    walker = Sprite.textured(height // 6, width // 22, base=215.0, seed=seed)
    vehicle = Sprite.rectangle(max(height // 12, 4), max(width // 8, 6), intensity=25.0)
    tracks = [
        SpriteTrack(
            walker,
            bounce_path(
                (height * 0.5, 0.0), (height / 700.0, width / 80.0),
                (height, width), walker.shape,
            ),
        ),
        SpriteTrack(
            vehicle,
            bounce_path(
                (height * 0.72, width * 0.9), (0.0, -width / 40.0),
                (height, width), vehicle.shape,
            ),
            start_frame=5,
        ),
    ]
    return SyntheticVideo(cfg, tracks=tracks, num_frames=num_frames)


def _stressor_tracks(
    height: int, width: int, seed: int,
    shadow: bool = False,
) -> list[SpriteTrack]:
    """The shared pair of moving objects every stressor scene uses, so
    matrix cells differ only in their disturbance, not their targets."""
    walker = Sprite.textured(height // 6, width // 22, base=215.0, seed=seed)
    box = Sprite.rectangle(
        max(height // 12, 4), max(width // 9, 6), intensity=25.0
    )
    shadow_kw = (
        {"shadow_offset": (max(height // 10, 3), max(width // 30, 2))}
        if shadow
        else {}
    )
    return [
        SpriteTrack(
            walker,
            bounce_path(
                (height * 0.5, 0.0), (height / 650.0, width / 85.0),
                (height, width), walker.shape,
            ),
            **shadow_kw,
        ),
        SpriteTrack(
            box,
            bounce_path(
                (height * 0.7, width * 0.85), (0.0, -width / 45.0),
                (height, width), box.shape,
            ),
            start_frame=4,
            **shadow_kw,
        ),
    ]


def static_scene(
    height: int = 240, width: int = 320, seed: int = 41, num_frames: int | None = None
) -> SyntheticVideo:
    """Control cell of the quality matrix: clean static background,
    moderate noise, the shared stressor targets, no disturbance."""
    cfg = SceneConfig(
        height=height, width=width, noise_sd=3.0, seed=seed,
        background_low=55.0, background_high=185.0,
    )
    tracks = _stressor_tracks(height, width, seed)
    return SyntheticVideo(cfg, tracks=tracks, num_frames=num_frames)


def jitter_scene(
    height: int = 240, width: int = 320, seed: int = 43, num_frames: int | None = None
) -> SyntheticVideo:
    """Camera shake: the whole frame shifts +/-2 px each frame.

    Violates the fixed-camera assumption both families share — every
    high-contrast background edge becomes a strip of misclassified
    pixels whose width tracks the shake amplitude.
    """
    cfg = SceneConfig(
        height=height, width=width, noise_sd=3.0, seed=seed,
        background_low=55.0, background_high=185.0,
        jitter_px=2,
    )
    tracks = _stressor_tracks(height, width, seed)
    return SyntheticVideo(cfg, tracks=tracks, num_frames=num_frames)


def illumination_scene(
    height: int = 240, width: int = 320, seed: int = 47, num_frames: int | None = None
) -> SyntheticVideo:
    """Global illumination step: at frame 40 the lights change
    (gain 1.3, offset +18) and stay changed.

    The first post-step frames flag nearly everything foreground; the
    score then tracks how fast each family re-converges — MoG by
    spawning fresh components, DMSG through its candidate mode.
    """
    cfg = SceneConfig(
        height=height, width=width, noise_sd=3.0, seed=seed,
        background_low=45.0, background_high=160.0,
    )
    tracks = _stressor_tracks(height, width, seed)
    steps = [IlluminationStep(frame=40, gain=1.3, offset=18.0)]
    return SyntheticVideo(
        cfg, tracks=tracks, illumination=steps, num_frames=num_frames
    )


def rain_scene(
    height: int = 240, width: int = 320, seed: int = 53, num_frames: int | None = None
) -> SyntheticVideo:
    """Rain/snow dynamic texture: bright transient streaks every frame.

    Streaks never repeat a location, so no model can converge to them;
    the score measures clutter rejection (and how much a multi-modal
    background budget actually buys here).
    """
    cfg = SceneConfig(
        height=height, width=width, noise_sd=3.0, seed=seed,
        background_low=50.0, background_high=150.0,
    )
    tracks = _stressor_tracks(height, width, seed)
    rain = RainLayer(
        rate=max(1.0, height * width / 900.0),
        length=max(height // 40, 4),
        slant=1,
        brightness=235.0,
        opacity=0.7,
    )
    return SyntheticVideo(cfg, tracks=tracks, rain=rain, num_frames=num_frames)


def shadow_scene(
    height: int = 240, width: int = 320, seed: int = 59, num_frames: int | None = None
) -> SyntheticVideo:
    """Hard shadows: both objects cast offset dark copies of their
    footprints that are ground-truth background.

    Raw masks mark the shadow foreground (intensity halves under it),
    so precision drops unless a shadow-aware post stage — the fused
    shadow consumer — rescues the cell.
    """
    cfg = SceneConfig(
        height=height, width=width, noise_sd=3.0, seed=seed,
        background_low=80.0, background_high=200.0,
    )
    tracks = _stressor_tracks(height, width, seed, shadow=True)
    return SyntheticVideo(cfg, tracks=tracks, num_frames=num_frames)


def ptz_scene(
    height: int = 240, width: int = 320, seed: int = 61, num_frames: int | None = None
) -> PanningVideo:
    """PTZ pan: the viewport sweeps over a wider static panorama.

    The panorama itself is the clean static-scene world (same noise and
    contrast, the shared stressor targets roaming the full panoramic
    width); what breaks the models is pure apparent motion — every
    background pixel sees a sliding window of world content, so
    per-pixel distributions never converge. Ground truth stays exact:
    frame and mask are cropped from the same panorama columns.
    """
    pan_span = max(width // 4, 8)
    pan_width = width + pan_span
    cfg = SceneConfig(
        height=height, width=pan_width, noise_sd=3.0, seed=seed,
        background_low=55.0, background_high=185.0,
    )
    tracks = _stressor_tracks(height, pan_width, seed)
    panorama = SyntheticVideo(cfg, tracks=tracks)
    return PanningVideo(
        panorama,
        view_width=width,
        pan_step=max(width // 160, 1),
        num_frames=num_frames,
    )


def surveillance_scene(
    height: int = 240, width: int = 320, seed: int = 11, num_frames: int | None = None
) -> SyntheticVideo:
    """Outdoor surveillance: two pedestrians and a flickering sign."""
    cfg = SceneConfig(
        height=height, width=width, noise_sd=4.0, seed=seed,
        background_low=50.0, background_high=180.0,
    )
    ped = Sprite.textured(height // 6, width // 24, base=210.0, seed=seed)
    ped2 = Sprite.textured(height // 7, width // 28, base=25.0, seed=seed + 1)
    tracks = [
        SpriteTrack(
            ped,
            bounce_path(
                (height * 0.55, 0.0), (0.0, width / 90.0),
                (height, width), ped.shape,
            ),
        ),
        SpriteTrack(
            ped2,
            bounce_path(
                (height * 0.35, width * 0.8), (height / 400.0, -width / 120.0),
                (height, width), ped2.shape,
            ),
            start_frame=10,
        ),
    ]
    flicker = [
        FlickerRegion(
            top=height // 12, left=width // 12,
            height=height // 10, width=width // 6,
            level_a=70.0, level_b=150.0, period=5,
        )
    ]
    return SyntheticVideo(cfg, tracks=tracks, flicker=flicker, num_frames=num_frames)


def traffic_scene(
    height: int = 240, width: int = 320, seed: int = 23, num_frames: int | None = None
) -> SyntheticVideo:
    """Highway camera: four vehicles on two lanes plus cloud drift."""
    cfg = SceneConfig(
        height=height, width=width, noise_sd=3.0, seed=seed,
        background_low=90.0, background_high=140.0,
    )
    car_h, car_w = max(height // 12, 4), max(width // 10, 6)
    lanes = [int(height * f) for f in (0.25, 0.45, 0.65, 0.8)]
    speeds = [width / 40.0, -width / 55.0, width / 70.0, -width / 45.0]
    shades = [220.0, 30.0, 180.0, 60.0]
    tracks = []
    for i, (lane, speed, shade) in enumerate(zip(lanes, speeds, shades)):
        car = Sprite.rectangle(car_h, car_w, intensity=shade)
        start_c = 0.0 if speed > 0 else float(width - car_w)
        tracks.append(
            SpriteTrack(
                car,
                bounce_path(
                    (float(lane), start_c), (0.0, speed),
                    (height, width), car.shape,
                ),
                start_frame=3 * i,
            )
        )
    drift = [
        DriftRegion(
            top=0, left=0, height=height // 3, width=width,
            amplitude=12.0, period=160,
        )
    ]
    return SyntheticVideo(cfg, tracks=tracks, drift=drift, num_frames=num_frames)


def patient_room_scene(
    height: int = 240, width: int = 320, seed: int = 31, num_frames: int | None = None
) -> SyntheticVideo:
    """Indoor patient monitoring: one slow subject, a flickering
    bedside monitor, low sensor noise."""
    cfg = SceneConfig(
        height=height, width=width, noise_sd=1.5, seed=seed,
        background_low=60.0, background_high=110.0,
    )
    subject = Sprite.disk(max(height // 10, 3), intensity=190.0)
    tracks = [
        SpriteTrack(
            subject,
            linear_path(
                (height * 0.4, width * 0.1), (height / 900.0, width / 300.0)
            ),
        )
    ]
    flicker = [
        FlickerRegion(
            top=height // 8, left=int(width * 0.7),
            height=height // 12, width=width // 10,
            level_a=40.0, level_b=95.0, period=3,
        )
    ]
    return SyntheticVideo(cfg, tracks=tracks, flicker=flicker, num_frames=num_frames)
