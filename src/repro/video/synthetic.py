"""Synthetic scene generator.

MoG models each pixel's background as a small Gaussian mixture, so the
generator produces exactly the statistics that algorithm consumes:

* a static background image with additive Gaussian sensor noise
  (unimodal pixels),
* optional *flicker regions* whose pixels alternate between two
  intensity levels (bimodal pixels — the "multi-modal background
  scenes" MoG is famous for handling),
* optional *dynamic-texture regions* with a slow sinusoidal intensity
  drift (tests the adaptive learning rate),
* optional *global illumination steps*, *rain/snow streaks* and camera
  jitter — background disturbances with unchanged ground truth, the
  stressors the model-quality matrix scores the families on,
* moving foreground sprites with exact ground-truth masks (optionally
  casting hard shadows that are ground-truth background).

Frames are produced lazily; the generator is deterministic given its
seed, and two generators with equal configs produce identical
sequences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import VideoError
from ..utils.rng import rng_from_seed
from .objects import SpriteTrack, render_tracks


@dataclass(frozen=True)
class FlickerRegion:
    """A rectangular region alternating between two intensity offsets.

    Every ``period`` frames the region toggles between ``level_a`` and
    ``level_b`` (absolute intensities). Pixels inside remain background
    — a correctly converged MoG maintains one component per level.
    """

    top: int
    left: int
    height: int
    width: int
    level_a: float = 60.0
    level_b: float = 140.0
    period: int = 4

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise VideoError("flicker region must have positive size")
        if self.period <= 0:
            raise VideoError("flicker period must be positive")

    def level(self, t: int) -> float:
        return self.level_a if (t // self.period) % 2 == 0 else self.level_b


@dataclass(frozen=True)
class DriftRegion:
    """A region whose intensity drifts sinusoidally around the base
    image — e.g. cloud shadow or a CRT monitor in a patient room."""

    top: int
    left: int
    height: int
    width: int
    amplitude: float = 20.0
    period: int = 120

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise VideoError("drift region must have positive size")
        if self.period <= 0:
            raise VideoError("drift period must be positive")

    def offset(self, t: int) -> float:
        return self.amplitude * np.sin(2.0 * np.pi * t / self.period)


@dataclass(frozen=True)
class IlluminationStep:
    """A global illumination change switched on at ``frame``.

    From frame ``frame`` onward the whole background becomes
    ``clip(bg * gain + offset)`` — lights switched on, sudden cloud
    cover, auto-exposure kicking in. Ground truth is unaffected: the
    change is background, and a background model must re-converge to
    it rather than flag the whole frame foreground.
    """

    frame: int
    gain: float = 1.0
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.frame < 0:
            raise VideoError("illumination step frame must be non-negative")
        if self.gain <= 0.0:
            raise VideoError("illumination gain must be positive")


@dataclass(frozen=True)
class RainLayer:
    """Rain/snow: transient bright streaks drawn over every frame.

    ``rate`` streaks per frame (in expectation), each ``length`` pixels
    long falling with ``slant`` horizontal drift, blended toward
    ``brightness`` with weight ``opacity``. The streaks are dynamic
    texture — ground truth marks them background, so a model scores on
    how quickly it absorbs clutter it can never converge to (every
    streak lands somewhere new).
    """

    rate: float = 40.0
    length: int = 6
    slant: int = 1
    brightness: float = 230.0
    opacity: float = 0.7

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise VideoError("rain rate must be non-negative")
        if self.length <= 0:
            raise VideoError("rain streak length must be positive")
        if not 0.0 < self.opacity <= 1.0:
            raise VideoError("rain opacity must be in (0, 1]")

    def draw(
        self, frame: np.ndarray, t: int, seed: int
    ) -> np.ndarray:
        """Blend this frame's streaks into ``frame`` (float, mutated)."""
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, 104729, t])
        )
        hh, ww = frame.shape
        count = rng.poisson(self.rate)
        if count == 0:
            return frame
        r0 = rng.integers(0, hh, count)
        c0 = rng.integers(0, ww, count)
        for i in range(count):
            rows = r0[i] + np.arange(self.length)
            cols = c0[i] + np.round(
                np.linspace(0.0, self.slant, self.length)
            ).astype(int)
            keep = (rows < hh) & (cols >= 0) & (cols < ww)
            rr, cc = rows[keep], cols[keep]
            frame[rr, cc] = (
                (1.0 - self.opacity) * frame[rr, cc]
                + self.opacity * self.brightness
            )
        return frame


@dataclass(frozen=True)
class SceneConfig:
    """Configuration for :class:`SyntheticVideo`.

    Attributes
    ----------
    height, width:
        Frame geometry.
    noise_sd:
        Standard deviation of the per-frame Gaussian sensor noise.
    background_smoothness:
        Length scale (pixels) of the random static background; larger
        values give smoother scenes.
    background_low, background_high:
        Intensity range of the static background.
    bimodal_fraction, bimodal_delta:
        Per-pixel background multi-modality: a random
        ``bimodal_fraction`` of pixels alternate between their base
        intensity and base + ``bimodal_delta``, each with its own random
        phase and half-period (*runs* of 6-12 frames per mode). Real
        surveillance footage is multi-modal almost everywhere (waving
        vegetation, sensor behaviour, compression); the temporal
        persistence is what lets MoG sharpen a component inside a run
        and then spawn a second component at the mode switch — iid
        flipping would just be absorbed into one wide component. A
        correctly converged MoG classifies these pixels as background.
    jitter_px:
        Camera shake: each frame the whole image shifts by an integer
        offset drawn uniformly from ``[-jitter_px, jitter_px]`` per
        axis (edge pixels replicate). MoG assumes a *fixed* camera —
        the paper restricts itself to that case — and this knob lets
        experiments measure how quickly the assumption's violation
        destroys quality.
    seed:
        Seed for the static background, the bimodal pixel set, the
        per-frame noise and the jitter.
    """

    height: int = 240
    width: int = 320
    noise_sd: float = 3.0
    background_smoothness: int = 24
    background_low: float = 40.0
    background_high: float = 200.0
    bimodal_fraction: float = 0.0
    bimodal_delta: float = 16.0
    jitter_px: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise VideoError("scene geometry must be positive")
        if self.noise_sd < 0.0:
            raise VideoError("noise_sd must be non-negative")
        if self.background_smoothness <= 0:
            raise VideoError("background_smoothness must be positive")
        if self.background_high < self.background_low:
            raise VideoError("background_high must be >= background_low")
        if not 0.0 <= self.bimodal_fraction <= 1.0:
            raise VideoError("bimodal_fraction must be in [0, 1]")
        if self.jitter_px < 0:
            raise VideoError("jitter_px must be non-negative")
        if self.jitter_px >= min(self.height, self.width):
            raise VideoError("jitter_px must be smaller than the frame")


def _shift_replicate(img: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift a 2-D array by (dy, dx), replicating the entering edge."""
    if dy == 0 and dx == 0:
        return img
    hh, ww = img.shape
    out = np.empty_like(img)
    ys = np.clip(np.arange(hh) - dy, 0, hh - 1)
    xs = np.clip(np.arange(ww) - dx, 0, ww - 1)
    out[:] = img[ys][:, xs]
    return out


def _smooth_random_field(
    shape: tuple[int, int], smoothness: int, rng: np.random.Generator
) -> np.ndarray:
    """A smooth random field in [0, 1], built by bilinear upsampling of
    coarse noise (cheap, dependency-free alternative to Perlin noise)."""
    hh, ww = shape
    ch = max(2, hh // smoothness + 1)
    cw = max(2, ww // smoothness + 1)
    coarse = rng.random((ch, cw))
    # Bilinear interpolation onto the full grid.
    rows = np.linspace(0.0, ch - 1.0, hh)
    cols = np.linspace(0.0, cw - 1.0, ww)
    r0 = np.floor(rows).astype(int)
    c0 = np.floor(cols).astype(int)
    r1 = np.minimum(r0 + 1, ch - 1)
    c1 = np.minimum(c0 + 1, cw - 1)
    fr = (rows - r0)[:, None]
    fc = (cols - c0)[None, :]
    top = coarse[r0][:, c0] * (1 - fc) + coarse[r0][:, c1] * fc
    bot = coarse[r1][:, c0] * (1 - fc) + coarse[r1][:, c1] * fc
    return top * (1 - fr) + bot * fr


class SyntheticVideo:
    """Deterministic synthetic frame source with ground truth.

    Iterate or call :meth:`frame` / :meth:`frame_with_truth` by index;
    indices may be visited in any order and repeatedly — every frame is
    a pure function of ``(config, tracks, index)``.

    Examples
    --------
    >>> video = SyntheticVideo(SceneConfig(height=64, width=64))
    >>> frame, truth = video.frame_with_truth(0)
    >>> frame.shape, frame.dtype.name, truth.dtype.name
    ((64, 64), 'uint8', 'bool')
    """

    def __init__(
        self,
        config: SceneConfig | None = None,
        tracks: list[SpriteTrack] | None = None,
        flicker: list[FlickerRegion] | None = None,
        drift: list[DriftRegion] | None = None,
        illumination: list[IlluminationStep] | None = None,
        rain: RainLayer | None = None,
        num_frames: int | None = None,
    ) -> None:
        self.config = config or SceneConfig()
        self.tracks = list(tracks or [])
        self.flicker = list(flicker or [])
        self.drift = list(drift or [])
        self.illumination = list(illumination or [])
        self.rain = rain
        self.num_frames = num_frames
        cfg = self.config
        rng = rng_from_seed(cfg.seed)
        field01 = _smooth_random_field(
            (cfg.height, cfg.width), cfg.background_smoothness, rng
        )
        span = cfg.background_high - cfg.background_low
        self._static = cfg.background_low + span * field01
        # The fixed set of bimodal pixels with per-pixel phase/period.
        if cfg.bimodal_fraction > 0.0:
            shape2 = (cfg.height, cfg.width)
            self._bimodal = rng.random(shape2) < cfg.bimodal_fraction
            self._bimodal_phase = rng.integers(0, 1 << 16, shape2)
            self._bimodal_halfperiod = rng.integers(6, 13, shape2)
        else:
            self._bimodal = None
        self._validate_regions()

    def _validate_regions(self) -> None:
        hh, ww = self.config.height, self.config.width
        for region in [*self.flicker, *self.drift]:
            if (
                region.top < 0
                or region.left < 0
                or region.top + region.height > hh
                or region.left + region.width > ww
            ):
                raise VideoError(
                    f"region {region} does not fit a {hh}x{ww} frame"
                )

    @property
    def shape(self) -> tuple[int, int]:
        """Frame geometry ``(height, width)``."""
        return (self.config.height, self.config.width)

    def background(self, t: int) -> np.ndarray:
        """The noiseless background at frame ``t`` (float64 array).

        This is the ground-truth background image the MoG means should
        converge to — used by background-quality metrics.
        """
        bg = self._static.copy()
        for region in self.flicker:
            sl = (
                slice(region.top, region.top + region.height),
                slice(region.left, region.left + region.width),
            )
            bg[sl] = region.level(t)
        for region in self.drift:
            sl = (
                slice(region.top, region.top + region.height),
                slice(region.left, region.left + region.width),
            )
            bg[sl] = np.clip(bg[sl] + region.offset(t), 0.0, 255.0)
        for step in self.illumination:
            if t >= step.frame:
                bg = np.clip(bg * step.gain + step.offset, 0.0, 255.0)
        return bg

    def frame_with_truth(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Frame ``t`` as ``(uint8 frame, bool ground-truth mask)``."""
        if t < 0:
            raise VideoError(f"frame index must be non-negative, got {t}")
        if self.num_frames is not None and t >= self.num_frames:
            raise VideoError(
                f"frame index {t} out of range (num_frames={self.num_frames})"
            )
        cfg = self.config
        # Per-frame generator: frames are independent of visit order.
        noise_rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, t]))
        bg = self.background(t)
        if self._bimodal is not None:
            mode = ((t + self._bimodal_phase) // self._bimodal_halfperiod) % 2 == 1
            bg = bg + (self._bimodal & mode) * cfg.bimodal_delta
        frame, truth = render_tracks(bg, self.tracks, t)
        if cfg.jitter_px > 0:
            dy, dx = noise_rng.integers(
                -cfg.jitter_px, cfg.jitter_px + 1, size=2
            )
            frame = _shift_replicate(frame, int(dy), int(dx))
            truth = _shift_replicate(truth, int(dy), int(dx))
        if self.rain is not None:
            frame = self.rain.draw(frame, t, cfg.seed)
        if cfg.noise_sd > 0.0:
            frame += noise_rng.normal(0.0, cfg.noise_sd, size=frame.shape)
        return np.clip(np.rint(frame), 0, 255).astype(np.uint8), truth

    def frame(self, t: int) -> np.ndarray:
        """Frame ``t`` as a ``uint8`` array."""
        return self.frame_with_truth(t)[0]

    def frames(self, count: int, start: int = 0):
        """Yield ``count`` frames starting at ``start``."""
        for t in range(start, start + count):
            yield self.frame(t)

    def __iter__(self):
        if self.num_frames is None:
            raise VideoError(
                "cannot iterate an unbounded SyntheticVideo; set num_frames"
            )
        return (self.frame(t) for t in range(self.num_frames))

    def __len__(self) -> int:
        if self.num_frames is None:
            raise VideoError("unbounded SyntheticVideo has no length")
        return self.num_frames


class PanningVideo:
    """A panning (PTZ) viewport cropped out of a wider panoramic scene.

    Models a pan-tilt-zoom camera sweeping over a static world: the
    wrapped :class:`SyntheticVideo` renders a panorama ``pan_span``
    columns wider than the viewport, and each output frame crops the
    viewport at a deterministic triangle-wave horizontal offset
    (``pan_step`` px/frame, bouncing between ``0`` and ``pan_span``).
    Both the frame and the ground-truth mask are cropped from the same
    columns, so truth stays exact while every background pixel sees a
    sliding window of world content — the apparent-motion stress that
    defeats per-pixel background models without camera-motion
    compensation.

    Duck-typed like :class:`SyntheticVideo`: ``frame_with_truth`` /
    ``frame`` / ``frames`` / ``shape`` / ``num_frames`` / iteration.
    Frames remain pure functions of ``(inner, view_width, pan_step, t)``.
    """

    def __init__(
        self,
        inner: SyntheticVideo,
        view_width: int,
        pan_step: int = 2,
        num_frames: int | None = None,
    ) -> None:
        pan_span = inner.config.width - view_width
        if view_width < 1 or pan_span < 1:
            raise VideoError(
                f"view_width must be in [1, {inner.config.width - 1}] to "
                f"leave room to pan, got {view_width}"
            )
        if pan_step < 1 or pan_step > pan_span:
            raise VideoError(
                f"pan_step must be in [1, {pan_span}], got {pan_step}"
            )
        self.inner = inner
        self.view_width = view_width
        self.pan_span = pan_span
        self.pan_step = pan_step
        self.num_frames = num_frames if num_frames is not None else inner.num_frames

    def pan_offset(self, t: int) -> int:
        """Leftmost panorama column of the viewport at frame ``t``
        (triangle wave over ``[0, pan_span]``)."""
        phase = (t * self.pan_step) % (2 * self.pan_span)
        return phase if phase <= self.pan_span else 2 * self.pan_span - phase

    @property
    def shape(self) -> tuple[int, int]:
        """Viewport geometry ``(height, width)``."""
        return (self.inner.config.height, self.view_width)

    def frame_with_truth(self, t: int) -> tuple[np.ndarray, np.ndarray]:
        """Frame ``t`` as ``(uint8 frame, bool ground-truth mask)``."""
        if self.num_frames is not None and 0 <= self.num_frames <= t:
            raise VideoError(
                f"frame index {t} out of range (num_frames={self.num_frames})"
            )
        frame, truth = self.inner.frame_with_truth(t)
        off = self.pan_offset(t)
        sl = slice(off, off + self.view_width)
        return frame[:, sl].copy(), truth[:, sl].copy()

    def frame(self, t: int) -> np.ndarray:
        """Frame ``t`` as a ``uint8`` array."""
        return self.frame_with_truth(t)[0]

    def frames(self, count: int, start: int = 0):
        """Yield ``count`` frames starting at ``start``."""
        for t in range(start, start + count):
            yield self.frame(t)

    def __iter__(self):
        if self.num_frames is None:
            raise VideoError(
                "cannot iterate an unbounded PanningVideo; set num_frames"
            )
        return (self.frame(t) for t in range(self.num_frames))

    def __len__(self) -> int:
        if self.num_frames is None:
            raise VideoError("unbounded PanningVideo has no length")
        return self.num_frames
