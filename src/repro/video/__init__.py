"""Synthetic video generation and frame I/O.

The paper evaluates on 450 full-HD surveillance frames which we do not
have; this package generates the closest synthetic equivalent: scenes
whose *per-pixel statistics* are what MoG actually consumes — a
stationary (possibly multi-modal) background distribution plus
foreground outliers — and, unlike real footage, exact ground-truth
foreground masks.

Entry points
------------
:class:`~repro.video.synthetic.SceneConfig` /
:class:`~repro.video.synthetic.SyntheticVideo`
    Configurable generator: static background with Gaussian sensor
    noise, optional flicker (bimodal) regions, optional periodic
    dynamic-texture regions, moving sprites.
:mod:`repro.video.scenes`
    Prebuilt scenarios matching the application domains the paper's
    introduction motivates (surveillance, traffic, patient monitoring).
:mod:`repro.video.io`
    ``FrameSource`` protocol, ``ArraySource``, npz round-tripping.
"""

from .color import ColorizedVideo
from .images import dump_run, read_image, write_image
from .io import ArraySource, FrameSource, load_sequence, record, save_sequence
from .objects import Sprite, SpriteTrack
from .scenes import (
    evaluation_scene,
    illumination_scene,
    jitter_scene,
    patient_room_scene,
    ptz_scene,
    rain_scene,
    shadow_scene,
    static_scene,
    surveillance_scene,
    traffic_scene,
)
from .stats import SceneStats, estimate_modality, scene_stats
from .synthetic import (
    IlluminationStep,
    PanningVideo,
    RainLayer,
    SceneConfig,
    SyntheticVideo,
)

__all__ = [
    "ArraySource",
    "ColorizedVideo",
    "FrameSource",
    "load_sequence",
    "record",
    "save_sequence",
    "dump_run",
    "read_image",
    "write_image",
    "Sprite",
    "SpriteTrack",
    "SceneConfig",
    "SceneStats",
    "scene_stats",
    "estimate_modality",
    "SyntheticVideo",
    "PanningVideo",
    "IlluminationStep",
    "RainLayer",
    "evaluation_scene",
    "surveillance_scene",
    "traffic_scene",
    "patient_room_scene",
    "static_scene",
    "jitter_scene",
    "illumination_scene",
    "rain_scene",
    "shadow_scene",
    "ptz_scene",
]
