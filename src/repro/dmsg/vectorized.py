"""NumPy-vectorized dual-mode single Gaussian oracle.

The pinned update semantics every DMSG emitter (gpusim kernels, jit
kernels, CUDA text) is validated bit-identical against. Per pixel and
frame, with background mode ``(a0, m0, s0)``, candidate ``(a1, m1, s1)``
and input intensity ``x``:

1. **Classify** against the pre-update background:
   ``d0 = |x - m0|``; the pixel is background iff ``d0 < Gamma1*s0``.
2. **Matched background** absorbs the sample with a capped running
   average: ``a0' = min(a0+1, age_cap)``, ``rho = 1/a0'``,
   ``m0' = (1-rho)*m0 + rho*x``,
   ``s0' = max(sqrt((1-rho)*s0^2 + rho*d0^2), sd_floor)``.
3. **Missed background** routes the sample to the candidate:
   if the candidate is live (``a1 > 0``) and matches
   (``|x - m1| < Gamma1*s1``) it absorbs the sample with the same
   running-average equations; otherwise it is **re-seeded**:
   ``a1 = 1``, ``m1 = x``, ``s1 = initial_sd``.
4. **Swap** when the candidate outlives the background
   (``a1 > a0``, checked after every update): the candidate becomes
   the background and the old background becomes an *empty* candidate
   (age 0) — the age-gated scene-change handover.

The variance update uses the exact two-term form
``(1-rho)*s*s + rho*d*d`` — the same floating-point expression as the
MoG update — so all implementations agree bit for bit. Step 3/4's
predicated forms blend with 0/1 multipliers, which is exactly equal to
the branchy selection for finite operands, so ``update="branchy"`` and
``update="predicated"`` kernels produce identical state and masks.

Parameters: DMSG reads ``match_threshold`` (Gamma1), ``initial_sd``
and ``sd_floor`` from :class:`~repro.config.MoGParams` and ignores the
mixture-only fields; the age cap is the fixed
:data:`~repro.config.DMSG_AGE_CAP`.
"""

from __future__ import annotations

import numpy as np

from ..config import DMSG_AGE_CAP, MoGParams, resolve_dtype
from ..errors import ConfigError
from ..mog.params import MixtureState
from .state import dmsg_state_from_first_frame

#: Algorithmic variants. DMSG has a single pinned form — the branchy /
#: predicated / no-sort distinctions that split MoG into four variants
#: all collapse to the same arithmetic here (see module docstring).
VARIANTS = ("dual",)


class DmsgVectorized:
    """Vectorized DMSG processor, mirroring
    :class:`repro.mog.MoGVectorized`'s interface.

    Parameters
    ----------
    shape:
        Frame geometry ``(height, width)``.
    params:
        Algorithmic parameters (defaults to :class:`MoGParams`; only
        ``match_threshold``, ``initial_sd`` and ``sd_floor`` are read).
    variant:
        Must be ``"dual"`` (kept for interface parity with the MoG
        oracle's four variants).
    dtype:
        ``"double"`` (default) or ``"float"`` for the mode state.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        variant: str = "dual",
        dtype: str | np.dtype = "double",
        integrity=None,
        telemetry=None,
    ) -> None:
        if variant not in VARIANTS:
            raise ConfigError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        self.params = params or MoGParams()
        self.variant = variant
        self.dtype = resolve_dtype(dtype)
        self.state: MixtureState | None = None
        self.frames_processed = 0
        self._guard = None
        if integrity is not None and integrity.active:
            from ..faults.integrity import IntegrityGuard

            self._guard = IntegrityGuard(
                integrity, self.params, telemetry=telemetry, model="dmsg"
            )

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    def _check_frame(self, frame: np.ndarray) -> np.ndarray:
        """Validate and flatten a frame to the run dtype (same contract
        as the MoG oracle: integer/float input, finite after the cast)."""
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        if frame.dtype.kind not in "uif":
            raise ConfigError(
                f"frame dtype must be integer or float, got {frame.dtype}"
            )
        flat = frame.reshape(-1).astype(self.dtype)
        if frame.dtype.kind == "f" and not np.isfinite(flat).all():
            raise ConfigError(
                f"frame contains non-finite values after cast to "
                f"{self.dtype} (NaN/inf would poison the mode state)"
            )
        return flat

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask."""
        x = self._check_frame(frame)
        if self.state is None:
            self.state = dmsg_state_from_first_frame(
                frame, self.params, self.dtype
            )
        elif self._guard is not None:
            self._guard.check(self.state, x, self.frames_processed)
        st = self.state
        dt = self.dtype.type
        gamma1 = dt(self.params.match_threshold)
        init_sd = dt(self.params.initial_sd)
        sd_floor = dt(self.params.sd_floor)
        age_cap = dt(DMSG_AGE_CAP)
        one = dt(1.0)
        zero = dt(0.0)

        a0, m0, s0 = st.w[0], st.m[0], st.sd[0]
        a1, m1, s1 = st.w[1], st.m[1], st.sd[1]

        # Step 1: classify against the pre-update background mode.
        d0 = np.abs(x - m0)
        matched_b = d0 < gamma1 * s0
        foreground = ~matched_b

        # Step 2: background running-average update where matched.
        agen0 = np.minimum(a0 + one, age_cap)
        rho0 = one / agen0
        m0u = (one - rho0) * m0 + rho0 * x
        var0 = (one - rho0) * (s0 * s0) + rho0 * (d0 * d0)
        s0u = np.maximum(np.sqrt(var0), sd_floor)
        a0n = np.where(matched_b, agen0, a0)
        m0n = np.where(matched_b, m0u, m0)
        s0n = np.where(matched_b, s0u, s0)

        # Step 3: the candidate absorbs (or re-seeds on) the misses.
        d1 = np.abs(x - m1)
        matched_c = (a1 > zero) & (d1 < gamma1 * s1)
        agen1 = np.minimum(a1 + one, age_cap)
        rho1 = one / agen1
        m1u = (one - rho1) * m1 + rho1 * x
        var1 = (one - rho1) * (s1 * s1) + rho1 * (d1 * d1)
        s1u = np.maximum(np.sqrt(var1), sd_floor)
        upd_c = foreground & matched_c
        reset_c = foreground & ~matched_c
        a1n = np.where(upd_c, agen1, np.where(reset_c, one, a1))
        m1n = np.where(upd_c, m1u, np.where(reset_c, x, m1))
        s1n = np.where(upd_c, s1u, np.where(reset_c, init_sd, s1))

        # Step 4: age-gated swap; the demoted background becomes an
        # empty candidate (age 0), preserving the a1 <= a0 invariant.
        swap = a1n > a0n
        a0f = np.where(swap, a1n, a0n)
        m0f = np.where(swap, m1n, m0n)
        s0f = np.where(swap, s1n, s0n)
        a1f = np.where(swap, zero, a1n)
        m1f = np.where(swap, m0n, m1n)
        s1f = np.where(swap, s0n, s1n)

        st.w = np.stack((a0f, a1f))
        st.m = np.stack((m0f, m1f))
        st.sd = np.stack((s0f, s1f))

        self.frames_processed += 1
        return foreground.reshape(self.shape)

    def apply_sequence(self, frames) -> np.ndarray:
        """Process an iterable of frames; returns a ``(T, H, W)`` bool
        stack of foreground masks."""
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def background_image(self) -> np.ndarray:
        """The background-mode means, clipped to image range.

        Consistent with :meth:`MixtureState.background_image`: the
        swap step maintains ``a1 <= a0``, so the max-age mode is always
        row 0 (argmax ties break to the first row).
        """
        if self.state is None:
            raise ConfigError("no frame processed yet")
        return self.state.background_image(self.shape)

    # -- checkpoint / restore (same contract as the MoG oracle) --------
    def state_snapshot(self):
        """Picklable snapshot ``(w, m, sd, frames_processed)`` or
        ``None`` before the first frame. The arrays are the live state
        (``apply`` rebinds rather than mutates), matching the MoG
        oracle's snapshot semantics."""
        if self.state is None:
            return None
        return (
            self.state.w, self.state.m, self.state.sd, self.frames_processed,
        )

    def restore_state(self, snapshot) -> None:
        """Restore a :meth:`state_snapshot`; ``None`` resets to
        pre-first-frame."""
        if snapshot is None:
            self.state = None
            self.frames_processed = 0
            return
        w, m, sd, frames_processed = snapshot
        expected = (2, self.num_pixels)
        for arr in (w, m, sd):
            if np.asarray(arr).shape != expected:
                raise ConfigError(
                    f"snapshot array shape {np.asarray(arr).shape} does "
                    f"not match model state shape {expected}"
                )
        # copy=True is load-bearing: see the MoG oracle's restore_state.
        self.state = MixtureState(
            np.array(w, dtype=self.dtype, copy=True),
            np.array(m, dtype=self.dtype, copy=True),
            np.array(sd, dtype=self.dtype, copy=True),
        )
        self.frames_processed = int(frames_processed)
