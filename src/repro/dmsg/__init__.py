"""Dual-mode single Gaussian (DMSG) background subtraction.

The second background-model family of the kernel IR (see
:mod:`repro.kernels.ir`), after the paper's Mixture of Gaussians. The
model follows the motion-masking formulation of "An Analysis of
Parallelized Motion Masking Using Dual-Mode Single Gaussian Models"
(PAPERS.md): each pixel keeps exactly **two** Gaussian modes,

* an *apparent background* mode ``(age, mean, sd)`` that classifies
  the pixel and absorbs matching samples with a running
  ``rho = 1/age`` average, and
* a *candidate* mode that accumulates evidence for a competing scene
  (a parked car, a new illumination plateau) and **swaps in** as the
  background once its age exceeds the background's.

One mode pair per pixel instead of K ranked components makes DMSG far
cheaper per frame than MoG — it is the serving tier's low-cost degrade
target — at a quality cost the model × level × scenario matrix
(``repro experiments models``) makes explicit.

This package mirrors :mod:`repro.mog`'s role: it holds the vectorized
NumPy oracle (:class:`DmsgVectorized`) the simulated-GPU and jit
emitters are pinned bit-identical against, and the state initialiser
shared by every execution path.
"""

from .state import dmsg_state_from_first_frame
from .vectorized import DmsgVectorized

__all__ = ["DmsgVectorized", "dmsg_state_from_first_frame"]
