"""DMSG state initialisation.

DMSG state reuses :class:`repro.mog.params.MixtureState` with ``K = 2``
and the weight plane reinterpreted as the mode **age** (the sample
count feeding the ``rho = 1/age`` running average):

========  ======================  =============================
plane     MoG meaning             DMSG meaning
========  ======================  =============================
``w``     component weight        mode age (frames absorbed)
``m``     component mean          mode mean
``sd``    component std dev       mode std dev
========  ======================  =============================

Row 0 is the apparent background, row 1 the candidate. Reusing the
container keeps every layer that moves state around — AoS/SoA device
layouts, checkpoint files, ``state_snapshot`` tuples, the jit kernel
signature — family-agnostic.
"""

from __future__ import annotations

import numpy as np

from ..config import MoGParams, resolve_dtype
from ..mog.params import MixtureState

#: Modes per pixel: background + candidate.
DMSG_NUM_MODES = 2


def dmsg_state_from_first_frame(
    frame: np.ndarray,
    params: MoGParams,
    dtype: str | np.dtype = "double",
) -> MixtureState:
    """Initial DMSG state: the background mode is centred on the first
    frame with age 1; the candidate starts *empty* (age 0), so it can
    never match until a background miss re-seeds it."""
    dt = resolve_dtype(dtype)
    pixels = np.asarray(frame, dtype=dt).reshape(-1)
    n = pixels.shape[0]
    w = np.zeros((DMSG_NUM_MODES, n), dtype=dt)
    m = np.zeros((DMSG_NUM_MODES, n), dtype=dt)
    sd = np.full((DMSG_NUM_MODES, n), dt.type(params.initial_sd), dtype=dt)
    w[0] = dt.type(1.0)
    m[0] = pixels
    m[1] = pixels
    return MixtureState(w, m, sd)
