"""Structure-of-Arrays layout (the paper's memory-coalescing fix).

Element order: ``buffer[(k * 3 + param) * N + pixel]`` — one contiguous
plane of N elements per (component, parameter) pair. When a warp's 32
threads read the same parameter of 32 neighbouring pixels the request
covers two 128-byte segments (for doubles): Figure 4(b)'s coalesced
pattern.
"""

from __future__ import annotations

import numpy as np

from ..mog.params import MixtureState
from .base import NUM_PARAMS, PARAM_M, PARAM_SD, PARAM_W, GaussianLayout


class SoALayout(GaussianLayout):
    """Plane-per-parameter storage."""

    def index(self, ctx, k: int, param: int, pixel):
        base = (k * NUM_PARAMS + param) * self.num_pixels
        # pixel + plane base: one integer add.
        return pixel + base

    def plane_base(self, k: int, param: int) -> int:
        """Host-side plane offset (used by the tiled kernel's staging)."""
        return (k * NUM_PARAMS + param) * self.num_pixels

    def upload(self, state: MixtureState) -> None:
        self._check_state(state)
        buf = self._require_buffer()
        view = buf.data.reshape(self.num_gaussians, NUM_PARAMS, self.num_pixels)
        view[:, PARAM_W, :] = state.w.astype(self.dtype)
        view[:, PARAM_M, :] = state.m.astype(self.dtype)
        view[:, PARAM_SD, :] = state.sd.astype(self.dtype)

    def download(self) -> MixtureState:
        buf = self._require_buffer()
        view = buf.data.reshape(self.num_gaussians, NUM_PARAMS, self.num_pixels)
        return MixtureState(
            np.ascontiguousarray(view[:, PARAM_W, :]),
            np.ascontiguousarray(view[:, PARAM_M, :]),
            np.ascontiguousarray(view[:, PARAM_SD, :]),
        )
