"""Array-of-Structures layout (the paper's base implementation).

Element order: ``buffer[pixel * K * 3 + k * 3 + param]`` — a direct
translation of a C ``struct Gaussian { double w, m, sd; } g[K]`` per
pixel. Adjacent threads therefore access memory ``K * 3 * itemsize``
bytes apart (72 B for 3 double components): a warp's request spans 18
128-byte segments, which is Figure 4(a)'s non-coalesced pattern.
"""

from __future__ import annotations

import numpy as np

from ..mog.params import MixtureState
from .base import NUM_PARAMS, PARAM_M, PARAM_SD, PARAM_W, GaussianLayout


class AoSLayout(GaussianLayout):
    """Interleaved per-pixel parameter storage."""

    def index(self, ctx, k: int, param: int, pixel):
        stride = self.num_gaussians * NUM_PARAMS
        # pixel * stride + (k*3 + param): one integer multiply-add.
        return pixel * stride + (k * NUM_PARAMS + param)

    def upload(self, state: MixtureState) -> None:
        self._check_state(state)
        buf = self._require_buffer()
        view = buf.data.reshape(self.num_pixels, self.num_gaussians, NUM_PARAMS)
        view[:, :, PARAM_W] = state.w.T.astype(self.dtype)
        view[:, :, PARAM_M] = state.m.T.astype(self.dtype)
        view[:, :, PARAM_SD] = state.sd.T.astype(self.dtype)

    def download(self) -> MixtureState:
        buf = self._require_buffer()
        view = buf.data.reshape(self.num_pixels, self.num_gaussians, NUM_PARAMS)
        return MixtureState(
            np.ascontiguousarray(view[:, :, PARAM_W].T),
            np.ascontiguousarray(view[:, :, PARAM_M].T),
            np.ascontiguousarray(view[:, :, PARAM_SD].T),
        )
