"""Gaussian-parameter memory layouts for the simulated GPU.

The paper's level-B optimization is purely a data-layout change:
Array-of-Structures (all nine parameters of a pixel adjacent, 72-byte
stride between neighbouring pixels' parameters) versus
Structure-of-Arrays (one contiguous plane per parameter, so 32
neighbouring threads read 32 adjacent elements — a coalesced access).
A layout object owns the device buffer, the host<->device conversion,
and the *index arithmetic*, which it emits through the kernel DSL so
its instruction cost is measured like any other code.
"""

from .aos import AoSLayout
from .base import GaussianLayout, PARAM_W, PARAM_M, PARAM_SD
from .soa import SoALayout

__all__ = [
    "GaussianLayout",
    "AoSLayout",
    "SoALayout",
    "PARAM_W",
    "PARAM_M",
    "PARAM_SD",
]
