"""Layout interface shared by AoS and SoA."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigError
from ..mog.params import MixtureState

#: Parameter indices within a Gaussian component.
PARAM_W = 0
PARAM_M = 1
PARAM_SD = 2
NUM_PARAMS = 3


class GaussianLayout(ABC):
    """Maps ``(component k, parameter p, pixel)`` to buffer indices.

    Concrete layouts allocate one device buffer holding all ``K * 3 * N``
    Gaussian parameters and translate between it and the host-side
    :class:`~repro.mog.params.MixtureState`.
    """

    def __init__(self, num_gaussians: int, num_pixels: int, dtype: np.dtype) -> None:
        if num_gaussians <= 0 or num_pixels <= 0:
            raise ConfigError("layout dimensions must be positive")
        self.num_gaussians = num_gaussians
        self.num_pixels = num_pixels
        self.dtype = np.dtype(dtype)
        self.buffer = None  # set by allocate()

    @property
    def num_elements(self) -> int:
        return self.num_gaussians * NUM_PARAMS * self.num_pixels

    def allocate(self, memory, name: str = "gaussians"):
        """Allocate the device buffer in the simulated global memory."""
        self.buffer = memory.alloc(name, self.num_elements, self.dtype)
        return self.buffer

    def _require_buffer(self):
        if self.buffer is None:
            raise ConfigError("layout buffer not allocated; call allocate() first")
        return self.buffer

    # -- index arithmetic (emitted through the DSL) ----------------------
    @abstractmethod
    def index(self, ctx, k: int, param: int, pixel):
        """DSL expression for the element index of ``(k, param, pixel)``.

        ``pixel`` is a per-thread ``Vec``; the returned value is a
        ``Vec`` whose integer arithmetic has been charged to the launch
        like any kernel instruction.
        """

    # -- host <-> device -------------------------------------------------
    @abstractmethod
    def upload(self, state: MixtureState) -> None:
        """Write a host-side mixture state into the device buffer."""

    @abstractmethod
    def download(self) -> MixtureState:
        """Read the device buffer back into a host-side mixture state."""

    def _check_state(self, state: MixtureState) -> None:
        if state.num_gaussians != self.num_gaussians:
            raise ConfigError(
                f"state has {state.num_gaussians} components, layout expects "
                f"{self.num_gaussians}"
            )
        if state.num_pixels != self.num_pixels:
            raise ConfigError(
                f"state has {state.num_pixels} pixels, layout expects "
                f"{self.num_pixels}"
            )
