"""NumPy-vectorized MoG with the paper's four algorithmic variants.

See :mod:`repro.mog.update` for the pinned semantics. The variants are
written so that, in float64, every variant produces *bit-identical*
foreground masks to the scalar reference (the expressions are mirrored
term by term). ``regopt`` restructures the foreground test the way the
paper's level F does — recomputing ``diff`` instead of keeping it in
registers — which provably cannot change the decision under these
update equations (:mod:`repro.mog.update`, step 6 note).

This module is also the practical CPU path of the library: it is what
:class:`repro.core.subtractor.BackgroundSubtractor` runs when asked for
``backend="cpu"``, and what the simulated GPU kernels are validated
against.
"""

from __future__ import annotations

import numpy as np

from ..config import MoGParams, resolve_dtype
from ..errors import ConfigError
from .params import MixtureState
from .rank import rank_order, replace_weakest

#: Algorithmic variants, in the order the paper introduces them.
VARIANTS = ("sorted", "nosort", "predicated", "regopt")


class MoGVectorized:
    """Vectorized MoG processor.

    Parameters
    ----------
    shape:
        Frame geometry ``(height, width)``.
    params:
        Algorithmic parameters (defaults to :class:`MoGParams`).
    variant:
        One of :data:`VARIANTS`.
    dtype:
        ``"double"`` (default) or ``"float"`` for the Gaussian state.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        variant: str = "sorted",
        dtype: str | np.dtype = "double",
        integrity=None,
        telemetry=None,
    ) -> None:
        if variant not in VARIANTS:
            raise ConfigError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        self.params = params or MoGParams()
        self.variant = variant
        self.dtype = resolve_dtype(dtype)
        self.state: MixtureState | None = None
        self.frames_processed = 0
        self._guard = None
        if integrity is not None and integrity.active:
            # Imported lazily: repro.mog.__init__ imports this module,
            # and repro.faults.integrity imports repro.mog.params.
            from ..faults.integrity import IntegrityGuard

            self._guard = IntegrityGuard(
                integrity, self.params, telemetry=telemetry
            )

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    def _check_frame(self, frame: np.ndarray) -> np.ndarray:
        """Validate and flatten a frame to the run dtype.

        Accepted dtypes: any unsigned/signed integer or float kind
        (``u``/``i``/``f``); typical sources produce ``uint8``. The
        finiteness check runs *after* the cast to the run dtype, so a
        finite ``float64`` value that overflows to ``inf`` in a
        ``float32`` run is rejected too — non-finite values written
        into the mixture state would persist for the pixel's lifetime.
        """
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        if frame.dtype.kind not in "uif":
            raise ConfigError(
                f"frame dtype must be integer or float, got {frame.dtype}"
            )
        flat = frame.reshape(-1).astype(self.dtype)
        if frame.dtype.kind == "f" and not np.isfinite(flat).all():
            raise ConfigError(
                f"frame contains non-finite values after cast to "
                f"{self.dtype} (NaN/inf would poison the mixture state)"
            )
        return flat

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask."""
        x = self._check_frame(frame)
        if self.state is None:
            self.state = MixtureState.from_first_frame(
                frame, self.params, self.dtype
            )
        elif self._guard is not None:
            # Guard runs before classification: corruption that landed
            # between frames is caught (and in repair mode healed)
            # before it can influence this frame's mask.
            self._guard.check(self.state, x, self.frames_processed)
        st = self.state
        dt = self.dtype.type
        alpha = dt(1.0 - self.params.learning_rate)
        oma = dt(1.0) - alpha  # 1 - alpha, computed in the run dtype
        gamma1 = dt(self.params.match_threshold)
        gamma2 = dt(self.params.background_weight)
        sd_floor = dt(self.params.sd_floor)
        one = dt(1.0)

        # Steps 1-2: classification against the pre-update state.
        diffs = np.abs(x[None, :] - st.m)
        match = diffs < gamma1 * st.sd
        any_match = match.any(axis=0)

        # Steps 3-4: parameter updates.
        if self.variant in ("predicated", "regopt"):
            # Algorithm 5: unconditional arithmetic, blended at the
            # assignment. `matchf` is the 0/1 predicate value.
            matchf = match.astype(self.dtype)
            w_new = alpha * st.w + matchf * oma
            with np.errstate(divide="ignore"):
                rho = np.minimum(oma / w_new, one)
            m_upd = (one - rho) * st.m + rho * x[None, :]
            var = (one - rho) * (st.sd * st.sd) + rho * (diffs * diffs)
            sd_upd = np.maximum(np.sqrt(var), sd_floor)
            m_new = (one - matchf) * st.m + matchf * m_upd
            sd_new = (one - matchf) * st.sd + matchf * sd_upd
        else:
            # Algorithm 4: branch per component (vectorized as where).
            w_new = np.where(match, alpha * st.w + oma, alpha * st.w)
            with np.errstate(divide="ignore"):
                rho = np.minimum(oma / w_new, one)
            m_upd = (one - rho) * st.m + rho * x[None, :]
            var = (one - rho) * (st.sd * st.sd) + rho * (diffs * diffs)
            sd_upd = np.maximum(np.sqrt(var), sd_floor)
            m_new = np.where(match, m_upd, st.m)
            sd_new = np.where(match, sd_upd, st.sd)

        # Step 5: virtual component on total miss.
        no_match = ~any_match
        if no_match.any():
            weakest = replace_weakest(
                w_new, m_new, sd_new, x, no_match,
                float(self.params.initial_weight), float(self.params.initial_sd),
            )
            cols = np.flatnonzero(no_match)
            diffs[weakest[cols], cols] = dt(0.0)

        # Step 6: foreground decision.
        if self.variant == "regopt":
            fg_diffs = np.abs(x[None, :] - m_new)
        else:
            fg_diffs = diffs
        background = ((w_new >= gamma2) & (fg_diffs < gamma1 * sd_new)).any(axis=0)
        foreground = ~background

        st.w, st.m, st.sd = w_new, m_new, sd_new

        # Step 7: rank + sort for the sorted variant.
        if self.variant == "sorted":
            st.permute(rank_order(st.w, st.sd))

        self.frames_processed += 1
        return foreground.reshape(self.shape)

    def apply_sequence(self, frames) -> np.ndarray:
        """Process an iterable of frames; returns a ``(T, H, W)`` bool
        stack of foreground masks."""
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def background_image(self) -> np.ndarray:
        """Most-probable background estimate (see Table IV)."""
        if self.state is None:
            raise ConfigError("no frame processed yet")
        return self.state.background_image(self.shape)

    # -- checkpoint / restore (the parallel path's fault tolerance) ----
    def state_snapshot(self):
        """Picklable snapshot ``(w, m, sd, frames_processed)`` or
        ``None`` before the first frame.

        The returned arrays are the live state, not copies: ``apply``
        rebinds the state arrays each frame (it never mutates them in
        place), so a snapshot taken between frames stays valid while
        the model keeps running.
        """
        if self.state is None:
            return None
        return (
            self.state.w, self.state.m, self.state.sd, self.frames_processed,
        )

    def restore_state(self, snapshot) -> None:
        """Restore a :meth:`state_snapshot`, resuming the model exactly
        where the snapshot was taken. ``None`` resets to pre-first-frame."""
        if snapshot is None:
            self.state = None
            self.frames_processed = 0
            return
        w, m, sd, frames_processed = snapshot
        expected = (self.params.num_gaussians, self.num_pixels)
        for arr in (w, m, sd):
            if np.asarray(arr).shape != expected:
                raise ConfigError(
                    f"snapshot array shape {np.asarray(arr).shape} does "
                    f"not match model state shape {expected}"
                )
        # copy=True is load-bearing: a restored model must never alias
        # the checkpoint's arrays — the checkpoint may be the *live*
        # state of another model (state_snapshot hands out references),
        # and a shared buffer would couple the two models' histories.
        self.state = MixtureState(
            np.array(w, dtype=self.dtype, copy=True),
            np.array(m, dtype=self.dtype, copy=True),
            np.array(sd, dtype=self.dtype, copy=True),
        )
        self.frames_processed = int(frames_processed)
