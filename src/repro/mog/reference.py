"""Scalar reference implementation of Algorithm 1.

A literal per-pixel translation of the paper's pseudo-code (with the
pinned semantics of :mod:`repro.mog.update`). It is deliberately
written with plain Python loops and floats — the "single-threaded CPU
implementation" of the paper in spirit — and is therefore only usable
at small frame sizes; tests use it as the ground truth every other
implementation must match.
"""

from __future__ import annotations

import numpy as np

from ..config import MoGParams
from ..errors import ConfigError
from .params import MixtureState
from .update import ScalarComponent, update_pixel


class MoGReference:
    """Ground-truth MoG processor (float64, per-pixel loops)."""

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        recompute_diff: bool = False,
        sort: bool = True,
    ) -> None:
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        self.params = params or MoGParams()
        self.recompute_diff = recompute_diff
        self.sort = sort
        self._components: list[list[ScalarComponent]] | None = None

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    def _init_state(self, frame: np.ndarray) -> None:
        state = MixtureState.from_first_frame(frame, self.params, "double")
        self._components = [
            [
                ScalarComponent(
                    float(state.w[k, p]), float(state.m[k, p]), float(state.sd[k, p])
                )
                for k in range(self.params.num_gaussians)
            ]
            for p in range(self.num_pixels)
        ]

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask.

        The first frame initialises the model (and, matching every
        other implementation here, is still processed through the
        update loop)."""
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        flat = frame.reshape(-1).astype(np.float64)
        if self._components is None:
            self._init_state(frame)
        assert self._components is not None
        mask = np.zeros(self.num_pixels, dtype=bool)
        for p in range(self.num_pixels):
            mask[p] = update_pixel(
                float(flat[p]),
                self._components[p],
                self.params,
                recompute_diff=self.recompute_diff,
                sort=self.sort,
            )
        return mask.reshape(self.shape)

    def state(self) -> MixtureState:
        """Snapshot of the mixture state as a :class:`MixtureState`."""
        if self._components is None:
            raise ConfigError("no frame processed yet")
        k = self.params.num_gaussians
        n = self.num_pixels
        w = np.empty((k, n))
        m = np.empty((k, n))
        sd = np.empty((k, n))
        for p, comps in enumerate(self._components):
            for j, comp in enumerate(comps):
                w[j, p] = comp.w
                m[j, p] = comp.m
                sd[j, p] = comp.sd
        return MixtureState(w, m, sd)

    def background_image(self) -> np.ndarray:
        """Most-probable background estimate (see Table IV)."""
        return self.state().background_image(self.shape)
