"""Ranking, sorting and virtual-component helpers (Algorithm 1 lines
12-21), vectorized over pixels.

Rank is the Stauffer-Grimson fitness ``w / sd``: components that explain
many recent pixels tightly rank highest. The sort is *stable descending*
(ties keep the lower component index first) so the vectorized and
scalar implementations agree exactly.
"""

from __future__ import annotations

import numpy as np


def rank_order(w: np.ndarray, sd: np.ndarray) -> np.ndarray:
    """Return the ``(K, N)`` permutation sorting components by
    descending ``w/sd`` per pixel (stable)."""
    rank = w / sd
    return np.argsort(-rank, axis=0, kind="stable")


def replace_weakest(
    w: np.ndarray,
    m: np.ndarray,
    sd: np.ndarray,
    pixels: np.ndarray,
    no_match: np.ndarray,
    new_w: float,
    new_sd: float,
) -> np.ndarray:
    """Replace the lowest-weight component with the virtual component
    for every pixel in ``no_match`` (boolean, length N). Mutates the
    state arrays in place and returns the replaced component index per
    pixel (arbitrary where ``no_match`` is False).

    ``argmin`` takes the first minimum, matching the scalar reference's
    lowest-index tie-break.
    """
    weakest = np.argmin(w, axis=0)
    cols = np.flatnonzero(no_match)
    rows = weakest[cols]
    w[rows, cols] = new_w
    m[rows, cols] = pixels[cols]
    sd[rows, cols] = new_sd
    return weakest
