"""The pinned update semantics of Algorithm 1.

Every implementation in this repository — the scalar reference, the
vectorized variants and the simulated GPU kernels — follows this exact
sequence for one pixel ``x`` with state ``(w_k, m_k, sd_k)``:

1. ``diff_k = |x - m_k|`` (pre-update means).
2. ``matched_k = diff_k < Gamma1 * sd_k`` (pre-update sd).

   *Deviation note*: the paper's pseudo-code writes ``diff[k] < Gamma1``
   at line 5 but ``diff[k]/sd[k] < Gamma1`` at line 24; the original
   Stauffer-Grimson test is "within ``Gamma1`` standard deviations" and
   we use that consistently at both sites.
3. Weight update (Algorithm 4/5 form, ``alpha`` = retention =
   ``1 - learning_rate``)::

       w_k' = alpha * w_k + (1 - alpha) * matched_k

4. For matched components, mean/sd move toward the pixel with the
   weight-normalised rate ``rho`` (clamped to 1)::

       rho_k  = min((1 - alpha) / w_k', 1)
       m_k'   = (1 - rho_k) * m_k + rho_k * x
       sd_k'  = max(sqrt((1 - rho_k) * sd_k^2 + rho_k * diff_k^2), sd_floor)

   Non-matched components keep ``m``/``sd`` unchanged (bit-exact).
5. If no component matched: the component with the smallest ``w_k'``
   (lowest index on ties) is replaced by the *virtual component*
   ``(w, m, sd) = (initial_weight, x, initial_sd)`` and its ``diff`` is
   taken as 0 for step 6.
6. Foreground decision (Algorithm 1 lines 22-28)::

       background  <=>  exists k:  w_k' >= Gamma2  and  diff_k < Gamma1 * sd_k'

   using *post-update* ``w`` and ``sd`` but the *pre-update* ``diff``
   (this is what storing ``diff[]`` in registers at line 4 means). The
   ``regopt`` variant (paper level F) instead recomputes
   ``diff_k = |x - m_k'|`` from the updated means.

   *Note*: under these update equations the two rules are provably
   equivalent. For a matched component, squaring
   ``diff >= Gamma1 * sd'`` gives
   ``d^2 (1 - Gamma1^2 rho) >= Gamma1^2 (1 - rho) s^2``, impossible
   whenever ``d < Gamma1 s`` (the match condition) since
   ``(1-rho)/(1-Gamma1^2 rho) > 1``; so a matched component always
   passes the closeness test under either diff, and unmatched
   components have identical diffs. The paper's small level-F quality
   drop is therefore a compiler/assembly artifact (the authors say as
   much: "to gain further insight assembly-level investigations would
   be required"), and this reproduction's Table IV shows identical
   output at every level — the paper's headline claim ("practically no
   impact on quality") holds exactly. ``tests/test_mog_vectorized.py``
   pins the equivalence.
7. The ``sorted`` variant then computes ``rank_k = w_k'/sd_k'`` and
   stably sorts the components by descending rank (Algorithm 1 lines
   16-21), physically reordering storage. Sorting does not change the
   decision in step 6 (an order-independent OR), so sorted and unsorted
   variants emit identical masks — it changes *control flow*, which is
   the point of optimization level D.

This module provides the scalar update used by the reference
implementation; the vectorized/kernel forms mirror it expression by
expression so float64 results agree bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import MoGParams


@dataclass
class ScalarComponent:
    """One Gaussian component of one pixel (reference implementation)."""

    w: float
    m: float
    sd: float


def update_pixel(
    x: float,
    components: list[ScalarComponent],
    params: MoGParams,
    recompute_diff: bool = False,
    sort: bool = True,
) -> bool:
    """Process one pixel through Algorithm 1; returns True if foreground.

    ``components`` is mutated in place (including the sort when
    ``sort=True``). ``recompute_diff=True`` selects the level-F (regopt)
    foreground test.
    """
    alpha = 1.0 - params.learning_rate
    one_minus_alpha = 1.0 - alpha
    gamma1 = params.match_threshold
    gamma2 = params.background_weight

    # Steps 1-4: classify and update every component.
    diffs: list[float] = []
    any_match = False
    for comp in components:
        diff = abs(x - comp.m)
        diffs.append(diff)
        matched = diff < gamma1 * comp.sd
        if matched:
            any_match = True
            comp.w = alpha * comp.w + one_minus_alpha
            rho = min(one_minus_alpha / comp.w, 1.0)
            comp.m = (1.0 - rho) * comp.m + rho * x
            var = (1.0 - rho) * (comp.sd * comp.sd) + rho * (diff * diff)
            comp.sd = max(math.sqrt(var), params.sd_floor)
        else:
            comp.w = alpha * comp.w

    # Step 5: virtual component replaces the weakest on total miss.
    if not any_match:
        weakest = min(range(len(components)), key=lambda k: (components[k].w, k))
        components[weakest].w = params.initial_weight
        components[weakest].m = x
        components[weakest].sd = params.initial_sd
        diffs[weakest] = 0.0

    # Step 6: foreground decision.
    foreground = True
    for k, comp in enumerate(components):
        diff = abs(x - comp.m) if recompute_diff else diffs[k]
        if comp.w >= gamma2 and diff < gamma1 * comp.sd:
            foreground = False
            break

    # Step 7: rank and sort (descending, stable).
    if sort:
        order = sorted(
            range(len(components)),
            key=lambda k: (-(components[k].w / components[k].sd), k),
        )
        reordered = [components[k] for k in order]
        components[:] = reordered

    return foreground
