"""Mixture state container and initialisation.

The state of a MoG run is three ``(K, N)`` arrays — weight, mean and
standard deviation per Gaussian component per pixel. The container is
layout-agnostic (always structure-of-arrays in host memory); the
:mod:`repro.layout` package maps it into the simulated GPU address
space in either AoS or SoA order.
"""

from __future__ import annotations

import numpy as np

from ..config import MoGParams, resolve_dtype
from ..errors import ConfigError


class MixtureState:
    """Per-pixel Gaussian mixture parameters.

    Attributes
    ----------
    w, m, sd:
        ``(K, N)`` arrays of weights, means and standard deviations,
        where ``K`` is the number of components and ``N`` the number of
        pixels. All three share one dtype (float32 or float64).
    """

    __slots__ = ("w", "m", "sd")

    def __init__(self, w: np.ndarray, m: np.ndarray, sd: np.ndarray) -> None:
        if not (w.shape == m.shape == sd.shape):
            raise ConfigError(
                f"state arrays must share a shape, got {w.shape}, {m.shape}, {sd.shape}"
            )
        if w.ndim != 2:
            raise ConfigError(f"state arrays must be (K, N), got shape {w.shape}")
        if not (w.dtype == m.dtype == sd.dtype):
            raise ConfigError("state arrays must share a dtype")
        self.w = w
        self.m = m
        self.sd = sd

    @property
    def num_gaussians(self) -> int:
        return self.w.shape[0]

    @property
    def num_pixels(self) -> int:
        return self.w.shape[1]

    @property
    def dtype(self) -> np.dtype:
        return self.w.dtype

    @classmethod
    def from_first_frame(
        cls,
        frame: np.ndarray,
        params: MoGParams,
        dtype: str | np.dtype = "double",
    ) -> "MixtureState":
        """Standard initialisation: component 0 is centred on the first
        frame with full weight; the remaining components start empty
        (zero weight, spread means) and are claimed by the
        virtual-component mechanism as the scene evolves."""
        dt = resolve_dtype(dtype)
        pixels = np.asarray(frame, dtype=dt).reshape(-1)
        n = pixels.shape[0]
        k = params.num_gaussians
        w = np.zeros((k, n), dtype=dt)
        m = np.zeros((k, n), dtype=dt)
        sd = np.full((k, n), dt.type(params.initial_sd), dtype=dt)
        w[0] = dt.type(1.0)
        m[0] = pixels
        # Spread the unused components' means across the intensity range
        # so they never accidentally match before being claimed.
        for j in range(1, k):
            m[j] = dt.type(-1000.0 * j)
        return cls(w, m, sd)

    def copy(self) -> "MixtureState":
        return MixtureState(self.w.copy(), self.m.copy(), self.sd.copy())

    def astype(self, dtype: str | np.dtype) -> "MixtureState":
        dt = resolve_dtype(dtype)
        return MixtureState(
            self.w.astype(dt), self.m.astype(dt), self.sd.astype(dt)
        )

    def background_image(self, shape: tuple[int, int]) -> np.ndarray:
        """The most-probable background image: per pixel, the mean of
        the highest-weight component. Used for the 'Background' rows of
        Table IV."""
        if shape[0] * shape[1] != self.num_pixels:
            raise ConfigError(
                f"shape {shape} does not match {self.num_pixels} pixels"
            )
        best = np.argmax(self.w, axis=0)
        img = self.m[best, np.arange(self.num_pixels)]
        return np.clip(img, 0.0, 255.0).reshape(shape)

    def permute(self, order: np.ndarray) -> None:
        """Reorder components per pixel in place.

        ``order`` is ``(K, N)``: ``order[j, p]`` is the source component
        index stored into slot ``j`` of pixel ``p`` — exactly what the
        sort step of Algorithm 1 (lines 19-21) does to the component
        storage."""
        if order.shape != self.w.shape:
            raise ConfigError(
                f"permutation shape {order.shape} != state shape {self.w.shape}"
            )
        cols = np.arange(self.num_pixels)
        self.w = self.w[order, cols]
        self.m = self.m[order, cols]
        self.sd = self.sd[order, cols]

    def allclose(self, other: "MixtureState", rtol: float = 1e-12) -> bool:
        """Numerical comparison helper for tests."""
        return (
            np.allclose(self.w, other.w, rtol=rtol)
            and np.allclose(self.m, other.m, rtol=rtol)
            and np.allclose(self.sd, other.sd, rtol=rtol)
        )
