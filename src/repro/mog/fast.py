"""Allocation-free fast path for the CPU backend.

:class:`MoGVectorized` is written for clarity: every frame allocates a
dozen ``(K, N)`` temporaries. This implementation applies the standard
NumPy optimization playbook — preallocate all scratch once, use
``out=`` everywhere, update state in place — while keeping the
*identical* floating-point expression order, so its results are
bit-for-bit equal to ``MoGVectorized(variant="nosort")`` (a test
enforces this). The speedup is measured honestly by
``benchmarks/test_sim_throughput.py::test_fast_path_speedup``.
"""

from __future__ import annotations

import numpy as np

from ..config import MoGParams, resolve_dtype
from ..errors import ConfigError
from .params import MixtureState


class FastMoG:
    """In-place, scratch-reusing equivalent of the ``nosort`` variant."""

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        dtype: str | np.dtype = "double",
    ) -> None:
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        self.params = params or MoGParams()
        self.dtype = resolve_dtype(dtype)
        self.state: MixtureState | None = None
        self.frames_processed = 0

        k = self.params.num_gaussians
        n = self.shape[0] * self.shape[1]
        dt = self.dtype
        # Scratch, allocated once.
        self._x = np.empty(n, dtype=dt)
        self._diffs = np.empty((k, n), dtype=dt)
        self._rho = np.empty((k, n), dtype=dt)
        self._onemrho = np.empty((k, n), dtype=dt)
        self._t1 = np.empty((k, n), dtype=dt)
        self._t2 = np.empty((k, n), dtype=dt)
        self._match = np.empty((k, n), dtype=bool)
        self._bool_scratch = np.empty((k, n), dtype=bool)
        self._any_match = np.empty(n, dtype=bool)
        self._bg = np.empty(n, dtype=bool)
        self._mask_out = np.empty(self.shape, dtype=bool)

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask.

        The returned array is freshly allocated (callers may keep it);
        everything else reuses this object's scratch.
        """
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        if self.state is None:
            self.state = MixtureState.from_first_frame(
                frame, self.params, self.dtype
            )
        st = self.state
        w, m, sd = st.w, st.m, st.sd
        dt = self.dtype.type
        alpha = dt(1.0 - self.params.learning_rate)
        oma = dt(1.0) - alpha
        gamma1 = dt(self.params.match_threshold)
        gamma2 = dt(self.params.background_weight)
        sd_floor = dt(self.params.sd_floor)
        one = dt(1.0)

        x = self._x
        np.copyto(x, frame.reshape(-1), casting="unsafe")
        diffs, match = self._diffs, self._match
        rho, onemrho = self._rho, self._onemrho
        t1, t2 = self._t1, self._t2

        # diffs = |x - m|   (same expression order as the clear path)
        np.subtract(x[None, :], m, out=diffs)
        np.abs(diffs, out=diffs)
        # match = diffs < gamma1 * sd
        np.multiply(sd, gamma1, out=t1)
        np.less(diffs, t1, out=match)
        np.any(match, axis=0, out=self._any_match)

        # w = where(match, alpha*w + oma, alpha*w): in place.
        np.multiply(w, alpha, out=w)
        np.add(w, oma, out=t1)
        np.copyto(w, t1, where=match)

        # rho = min(oma / w, 1)
        with np.errstate(divide="ignore"):
            np.divide(oma, w, out=rho)
        np.minimum(rho, one, out=rho)
        np.subtract(one, rho, out=onemrho)

        # m_upd = (1-rho)*m + rho*x  -> commit only where matched.
        np.multiply(onemrho, m, out=t1)
        np.multiply(rho, x[None, :], out=t2)
        np.add(t1, t2, out=t1)
        np.copyto(m, t1, where=match)

        # sd_upd = max(sqrt((1-rho)*(sd*sd) + rho*(diffs*diffs)), floor)
        np.multiply(sd, sd, out=t1)
        np.multiply(onemrho, t1, out=t1)
        np.multiply(diffs, diffs, out=t2)
        np.multiply(rho, t2, out=t2)
        np.add(t1, t2, out=t1)
        np.sqrt(t1, out=t1)
        np.maximum(t1, sd_floor, out=t1)
        np.copyto(sd, t1, where=match)

        # Virtual component on total miss.
        np.logical_not(self._any_match, out=self._bg)  # reuse as no_match
        no_match = self._bg
        if no_match.any():
            cols = np.flatnonzero(no_match)
            rows = np.argmin(w[:, cols], axis=0)
            w[rows, cols] = dt(self.params.initial_weight)
            m[rows, cols] = x[cols]
            sd[rows, cols] = dt(self.params.initial_sd)
            diffs[rows, cols] = dt(0.0)

        # Background decision.
        np.multiply(sd, gamma1, out=t1)
        np.less(diffs, t1, out=self._bool_scratch)
        np.greater_equal(w, gamma2, out=match)  # reuse match as scratch
        np.logical_and(self._bool_scratch, match, out=self._bool_scratch)
        np.any(self._bool_scratch, axis=0, out=self._bg)

        self.frames_processed += 1
        np.logical_not(
            self._bg.reshape(self.shape), out=self._mask_out
        )
        return self._mask_out.copy()

    def apply_sequence(self, frames) -> np.ndarray:
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def background_image(self) -> np.ndarray:
        if self.state is None:
            raise ConfigError("no frame processed yet")
        return self.state.background_image(self.shape)
