"""Compiled background model: runs :mod:`repro.kernels.jit` kernels.

:class:`MoGJit` is interface-compatible with
:class:`~repro.mog.vectorized.MoGVectorized` (``apply`` /
``apply_sequence`` / ``background_image`` / ``state_snapshot`` /
``restore_state`` / integrity guarding), but executes the per-pixel
kernel the JIT emitter renders from a :class:`~repro.kernels.ir.KernelSpec`
— so it speaks the same pass-stack vocabulary as the simulator and the
CUDA generator, including fused threshold/shadow/histogram tails
(exposed as :attr:`last_shadow` / :attr:`last_classes`).

The model family comes from the spec (``spec.model``): a DMSG spec
compiles the dual-mode single Gaussian kernel and initialises DMSG
state; the class name predates model families and is kept for the many
existing callers.

One behavioural difference from the vectorized model, by design: the
compiled kernel updates the mixture planes **in place** (that is the
point — no per-frame allocation), so :meth:`state_snapshot` returns
*copies* rather than live references. Checkpoint consumers already
treat snapshots as opaque values, so the stronger guarantee is free.
"""

from __future__ import annotations

import numpy as np

from ..config import FusionParams, MoGParams, resolve_dtype
from ..errors import ConfigError, JitUnavailableError
from ..kernels.common import KernelConfig
from ..kernels.ir import BASE_SPEC, KernelSpec
from ..kernels.jit import (
    cached_kernel_count,
    const_args,
    get_kernel,
    numba_available,
    numba_unavailable_reason,
)
from .params import MixtureState

__all__ = ["MoGJit", "JIT_ENGINES"]

#: ``engine=`` values :class:`MoGJit` accepts. ``"auto"`` resolves to
#: ``"numba"`` or raises :class:`~repro.errors.JitUnavailableError`;
#: ``"python"`` runs the emitted source interpreted (slow, test-only).
JIT_ENGINES = ("auto", "numba", "python")


class MoGJit:
    """Background-model processor running an emitter-compiled per-pixel
    kernel (the family — MoG or DMSG — comes from ``spec.model``).

    Parameters
    ----------
    shape:
        Frame geometry ``(height, width)``.
    params:
        Algorithmic parameters (defaults to :class:`MoGParams`).
    spec:
        The :class:`~repro.kernels.ir.KernelSpec` to compile (defaults
        to :data:`~repro.kernels.ir.BASE_SPEC`). Layout/overlap/tiling
        axes are GPU memory-residency choices with no CPU analogue and
        are ignored; update/sort/scan/fused drive the emitted code.
    dtype:
        ``"double"`` (default) or ``"float"``.
    fusion:
        :class:`~repro.config.FusionParams` for the fused tail
        constants (defaults used when omitted).
    engine:
        One of :data:`JIT_ENGINES`. ``"auto"`` (default) requires
        numba and raises :class:`JitUnavailableError` when it is
        missing — callers that can degrade catch this.
    cache:
        Optional :class:`~repro.kernels.jit.KernelCache` override;
        defaults to the process-wide cache (compile once per
        (spec, dtype, shape) across every model in the process).
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        spec: KernelSpec | None = None,
        dtype: str | np.dtype = "double",
        fusion: FusionParams | None = None,
        integrity=None,
        telemetry=None,
        engine: str = "auto",
        cache=None,
    ) -> None:
        if engine not in JIT_ENGINES:
            raise ConfigError(
                f"unknown jit engine {engine!r}; expected one of {JIT_ENGINES}"
            )
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        self.params = params or MoGParams()
        self.spec = (spec or BASE_SPEC).validate()
        self.model = self.spec.model
        self._k_count = self.model.component_count(self.params)
        self.dtype = resolve_dtype(dtype)
        self.state: MixtureState | None = None
        self.frames_processed = 0
        self._telemetry = telemetry
        self._guard = None
        if integrity is not None and integrity.active:
            from ..faults.integrity import IntegrityGuard

            self._guard = IntegrityGuard(
                integrity, self.params, telemetry=telemetry,
                model=self.model.name,
            )

        if engine == "auto":
            if not numba_available():
                raise JitUnavailableError(
                    numba_unavailable_reason() or "numba is not available"
                )
            engine = "numba"
        self.engine = engine

        cfg = KernelConfig.from_params(
            self.params, self.dtype, fusion, model=self.model
        )
        self._consts = const_args(cfg)
        # Compile (or fetch) eagerly so the cost lands at construction,
        # not on the first frame — measure_fps excludes warmup.
        if cache is not None:
            self._kernel = cache.get(
                self.spec, self._k_count, self.dtype,
                self.shape, engine=engine,
            )
        else:
            self._kernel = get_kernel(
                self.spec, self._k_count, self.dtype,
                self.shape, engine=engine,
            )
        self.compile_s = self._kernel.compile_s
        n = self.num_pixels
        self._fg = np.zeros(n, dtype=np.uint8)
        self._shadow = np.zeros(n, dtype=np.uint8)
        self._classes = np.zeros(n, dtype=np.uint8)
        if telemetry is not None:
            g = telemetry.gauge("jit.compile_s")
            g.set(g.value + self.compile_s)
            telemetry.gauge("jit.kernels_cached").set(cached_kernel_count())

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def fused(self) -> tuple[str, ...]:
        return self.spec.fused

    def _check_frame(self, frame: np.ndarray) -> np.ndarray:
        """Validate and flatten a frame to the run dtype (mirrors
        :meth:`MoGVectorized._check_frame` exactly)."""
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        if frame.dtype.kind not in "uif":
            raise ConfigError(
                f"frame dtype must be integer or float, got {frame.dtype}"
            )
        flat = frame.reshape(-1).astype(self.dtype)
        if frame.dtype.kind == "f" and not np.isfinite(flat).all():
            raise ConfigError(
                f"frame contains non-finite values after cast to "
                f"{self.dtype} (NaN/inf would poison the mixture state)"
            )
        return flat

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask.

        With fused stages on the spec, the mask is the post-
        threshold/shadow foreground (bit-identical to the cpu backend's
        fused chain) and :attr:`last_shadow` / :attr:`last_classes`
        hold the other fused outputs for this frame.
        """
        x = self._check_frame(frame)
        if self.state is None:
            if self.model.name == "dmsg":
                from ..dmsg import dmsg_state_from_first_frame

                self.state = dmsg_state_from_first_frame(
                    frame, self.params, self.dtype
                )
            else:
                self.state = MixtureState.from_first_frame(
                    frame, self.params, self.dtype
                )
        elif self._guard is not None:
            self._guard.check(self.state, x, self.frames_processed)
        st = self.state
        if self.engine == "numba":
            # error_model="numpy" inside the dispatcher handles the
            # by-design oma/0 division for zero-weight components.
            self._kernel.fn(
                x, st.w, st.m, st.sd,
                self._fg, self._shadow, self._classes, *self._consts,
            )
        else:
            with np.errstate(divide="ignore"):
                self._kernel.fn(
                    x, st.w, st.m, st.sd,
                    self._fg, self._shadow, self._classes, *self._consts,
                )
        self.frames_processed += 1
        if self._telemetry is not None:
            self._telemetry.counter("jit.frames").inc()
        return (self._fg != 0).reshape(self.shape)

    def apply_sequence(self, frames) -> np.ndarray:
        """Process an iterable of frames; returns a ``(T, H, W)`` bool
        stack of foreground masks."""
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    @property
    def last_shadow(self) -> np.ndarray:
        """Shadow map (uint8, 255=shadow) from the last fused frame."""
        return self._shadow.reshape(self.shape).copy()

    @property
    def last_classes(self) -> np.ndarray:
        """Class map (uint8, background=0/shadow=1/foreground=2) from
        the last fused frame."""
        return self._classes.reshape(self.shape).copy()

    def background_image(self) -> np.ndarray:
        """Most-probable background estimate (see Table IV)."""
        if self.state is None:
            raise ConfigError("no frame processed yet")
        return self.state.background_image(self.shape)

    # -- checkpoint / restore ------------------------------------------
    def state_snapshot(self):
        """Picklable snapshot ``(w, m, sd, frames_processed)`` or
        ``None`` before the first frame.

        Unlike :meth:`MoGVectorized.state_snapshot` the arrays are
        **copies**: the compiled kernel mutates the state planes in
        place each frame, so handing out live references would let a
        checkpoint silently drift while the model keeps running.
        """
        if self.state is None:
            return None
        return (
            self.state.w.copy(), self.state.m.copy(), self.state.sd.copy(),
            self.frames_processed,
        )

    def restore_state(self, snapshot) -> None:
        """Restore a :meth:`state_snapshot`, resuming the model exactly
        where the snapshot was taken. ``None`` resets to pre-first-frame."""
        if snapshot is None:
            self.state = None
            self.frames_processed = 0
            return
        w, m, sd, frames_processed = snapshot
        expected = (self._k_count, self.num_pixels)
        for arr in (w, m, sd):
            if np.asarray(arr).shape != expected:
                raise ConfigError(
                    f"snapshot array shape {np.asarray(arr).shape} does "
                    f"not match model state shape {expected}"
                )
        self.state = MixtureState(
            np.array(w, dtype=self.dtype, copy=True),
            np.array(m, dtype=self.dtype, copy=True),
            np.array(sd, dtype=self.dtype, copy=True),
        )
        self.frames_processed = int(frames_processed)
