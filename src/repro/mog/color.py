"""Color (RGB) Mixture-of-Gaussians — an extension beyond the paper.

The paper evaluates grayscale MoG; practical deployments usually run
the Stauffer-Grimson color form: per component, a 3-channel mean with a
*spherical* covariance (one scalar sd shared by the channels — the
original paper's simplification to avoid a full matrix inverse).

Semantics mirror :mod:`repro.mog.update` exactly, with the scalar
``diff`` generalised to the RMS per-channel deviation::

    diff = sqrt( sum_c (x_c - m_c)^2 / 3 )

which reduces to ``|x - m|`` when all channels are equal — so on a gray
input, the color model reproduces the grayscale model's decisions
bit-for-bit modulo the sqrt rounding (tests pin a tolerance-free
variant of this by feeding channel-equal frames).
"""

from __future__ import annotations

import numpy as np

from ..config import MoGParams, resolve_dtype
from ..errors import ConfigError

NUM_CHANNELS = 3


class ColorMoGVectorized:
    """Vectorized color MoG (CPU path; no simulated-kernel counterpart).

    Parameters mirror :class:`~repro.mog.vectorized.MoGVectorized`;
    frames are ``(H, W, 3)`` uint8.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        dtype: str | np.dtype = "double",
    ) -> None:
        self.shape = tuple(shape)
        if len(self.shape) != 2 or min(self.shape) <= 0:
            raise ConfigError(f"invalid frame shape {shape}")
        self.params = params or MoGParams()
        self.dtype = resolve_dtype(dtype)
        self.w: np.ndarray | None = None   # (K, N)
        self.m: np.ndarray | None = None   # (K, N, 3)
        self.sd: np.ndarray | None = None  # (K, N)
        self.frames_processed = 0

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    def _check_frame(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame)
        if frame.shape != (*self.shape, NUM_CHANNELS):
            raise ConfigError(
                f"expected frame of shape {(*self.shape, NUM_CHANNELS)}, "
                f"got {frame.shape}"
            )
        return frame.reshape(-1, NUM_CHANNELS).astype(self.dtype)

    def _init_state(self, x: np.ndarray) -> None:
        k, n = self.params.num_gaussians, self.num_pixels
        dt = self.dtype
        self.w = np.zeros((k, n), dtype=dt)
        self.m = np.zeros((k, n, NUM_CHANNELS), dtype=dt)
        self.sd = np.full((k, n), dt.type(self.params.initial_sd), dtype=dt)
        self.w[0] = dt.type(1.0)
        self.m[0] = x
        for j in range(1, k):
            self.m[j] = dt.type(-1000.0 * j)

    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one RGB frame; returns the boolean foreground mask."""
        x = self._check_frame(frame)
        if self.w is None:
            self._init_state(x)
        w, m, sd = self.w, self.m, self.sd
        dt = self.dtype.type
        alpha = dt(1.0 - self.params.learning_rate)
        oma = dt(1.0) - alpha
        gamma1 = dt(self.params.match_threshold)
        gamma2 = dt(self.params.background_weight)
        sd_floor = dt(self.params.sd_floor)
        one = dt(1.0)
        inv_c = dt(1.0 / NUM_CHANNELS)

        # Steps 1-2: RMS channel deviation against pre-update state.
        delta = x[None, :, :] - m                 # (K, N, 3)
        dist2 = (delta * delta).sum(axis=2) * inv_c
        diffs = np.sqrt(dist2)
        match = diffs < gamma1 * sd
        any_match = match.any(axis=0)

        # Steps 3-4: updates (where-form, matching the gray variants).
        w_new = np.where(match, alpha * w + oma, alpha * w)
        with np.errstate(divide="ignore"):
            rho = np.minimum(oma / w_new, one)
        m_upd = m + rho[:, :, None] * delta
        var = (one - rho) * (sd * sd) + rho * dist2
        sd_upd = np.maximum(np.sqrt(var), sd_floor)
        m_new = np.where(match[:, :, None], m_upd, m)
        sd_new = np.where(match, sd_upd, sd)

        # Step 5: virtual component on total miss.
        no_match = ~any_match
        if no_match.any():
            weakest = np.argmin(w_new, axis=0)
            cols = np.flatnonzero(no_match)
            rows = weakest[cols]
            w_new[rows, cols] = dt(self.params.initial_weight)
            m_new[rows, cols] = x[cols]
            sd_new[rows, cols] = dt(self.params.initial_sd)
            diffs[rows, cols] = dt(0.0)

        # Step 6: foreground decision.
        background = ((w_new >= gamma2) & (diffs < gamma1 * sd_new)).any(axis=0)

        self.w, self.m, self.sd = w_new, m_new, sd_new
        self.frames_processed += 1
        return (~background).reshape(self.shape)

    def apply_sequence(self, frames) -> np.ndarray:
        masks = [self.apply(f) for f in frames]
        if not masks:
            raise ConfigError("empty frame sequence")
        return np.stack(masks)

    def background_image(self) -> np.ndarray:
        """Most-probable RGB background estimate, shape (H, W, 3)."""
        if self.w is None:
            raise ConfigError("no frame processed yet")
        best = np.argmax(self.w, axis=0)
        img = self.m[best, np.arange(self.num_pixels)]
        return np.clip(img, 0.0, 255.0).reshape(*self.shape, NUM_CHANNELS)
