"""Mixture-of-Gaussians background subtraction (Stauffer-Grimson).

This package implements Algorithm 1 of the paper in two executable
forms with pinned, test-enforced semantics (see :mod:`repro.mog.update`
for the exact update equations and evaluation order):

* :mod:`repro.mog.reference` — a literal scalar per-pixel translation
  of Algorithm 1 (with ranking, sorting and early exit). Slow; used as
  ground truth in tests at small frame sizes.
* :mod:`repro.mog.vectorized` — NumPy-vectorized implementations of the
  four algorithmic variants the paper's optimization levels use:

  ==========  =========================================================
  variant     corresponds to
  ==========  =========================================================
  sorted      levels A/B/C — rank + sort + early-exit foreground scan
  nosort      level D — unconditional check of all components
  predicated  level E — Algorithm 5's assignment-level predication
  regopt      level F — ``diff`` recomputed from the *updated* means
  ==========  =========================================================

  All four produce identical foreground decisions: the scan is an
  order-independent OR, and the regopt rule is provably equivalent to
  the stored-diff rule under these update equations (see
  :mod:`repro.mog.update`, step 6 note).
"""

from .fast import FastMoG
from .params import MixtureState
from .reference import MoGReference
from .vectorized import VARIANTS, MoGVectorized

__all__ = ["FastMoG", "MixtureState", "MoGReference", "MoGVectorized", "VARIANTS"]
