"""Lightweight in-process metrics: counters, gauges, latency histograms.

The serving path (``SurveillancePipeline``, ``ParallelMoG``) is a
long-running service in the ROADMAP's target deployment; this module
gives it the minimal observability vocabulary such services need —
monotonically increasing counters (frames, restarts, fallbacks),
point-in-time gauges, and bucketed latency histograms per stage —
without any external dependency.

Everything hangs off a :class:`MetricsRegistry`. Instruments are
created on first use (``registry.counter("x").inc()``), are
thread-safe, and serialise to a plain-dict :meth:`MetricsRegistry.snapshot`
that is JSON-ready and rendered as text by
:func:`repro.bench.reporting.format_metrics`.

A registry built from ``TelemetryConfig(enabled=False)`` hands out
no-op instruments, so instrumented code never needs an ``if`` around a
metric update.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterator

from ..config import TelemetryConfig
from ..errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counters only go up; cannot add {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time float value (last write wins)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencyHistogram:
    """Bucketed distribution of durations (seconds).

    Tracks count / sum / min / max exactly and a cumulative bucket
    count per upper bound; quantiles are estimated by linear
    interpolation inside the owning bucket, which is plenty for stage
    latencies spanning the default millisecond-to-seconds range.
    """

    __slots__ = ("_lock", "_bounds", "_buckets", "count", "total", "_min", "_max")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)  # last bucket = +inf
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        # Reject bad durations *before* touching any state: a NaN that
        # got as far as count/_min/_max would land in no bucket and
        # permanently break the bucket-sum == count invariant that
        # to_dict documents (and poison every quantile thereafter).
        if not math.isfinite(seconds) or seconds < 0.0:
            raise ConfigError(
                f"latency observation must be a finite non-negative "
                f"duration in seconds, got {seconds!r}"
            )
        with self._lock:
            self.count += 1
            self.total += seconds
            self._min = min(self._min, seconds)
            self._max = max(self._max, seconds)
            for i, bound in enumerate(self._bounds):
                if seconds <= bound:
                    self._buckets[i] += 1
                    return
            self._buckets[-1] += 1

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def _quantile_locked(self, q: float) -> float:
        """Quantile estimate; the caller must hold ``self._lock``."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0.0
        lo = 0.0
        for i, bound in enumerate(self._bounds):
            n = self._buckets[i]
            if seen + n >= target and n:
                frac = (target - seen) / n
                est = lo + frac * (bound - lo)
                return min(max(est, self._min), self._max)
            seen += n
            lo = bound
        # The target quantile sits in the overflow (le_inf) bucket.
        # Interpolate within [last_bound, _max] over its mass rather
        # than collapsing every quantile to the maximum — with most
        # observations past the last bound, p50 == p99 == max
        # otherwise.
        n = self._buckets[-1]
        if n:
            frac = (target - seen) / n
            est = lo + frac * (self._max - lo)
            return min(max(est, self._min), self._max)
        return self._max

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def to_dict(self) -> dict:
        # Everything is read under one lock acquisition: count, sum,
        # extrema, buckets and the derived quantiles must come from the
        # same instant, or a snapshot racing a writer tears (count
        # inconsistent with the bucket sum, mean from a mixed state).
        with self._lock:
            buckets = {
                f"le_{bound:g}": int(c)
                for bound, c in zip(self._bounds, self._buckets)
            }
            buckets["le_inf"] = int(self._buckets[-1])
            count = self.count
            total = self.total
            return {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
                "min_s": self._min if count else 0.0,
                "max_s": self._max if count else 0.0,
                "p50_s": self._quantile_locked(0.50),
                "p95_s": self._quantile_locked(0.95),
                "buckets": buckets,
            }


class NullCounter:
    """Counter stand-in when telemetry is disabled."""

    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, seconds: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def to_dict(self) -> dict:
        return {}


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _Timer:
    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: LatencyHistogram) -> None:
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        # Failed stages are observed too: a timeout that takes 30 s is
        # exactly the latency signal the histogram exists to expose.
        self._hist.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Name -> instrument map with get-or-create semantics.

    Names are free-form; the convention used by the library is
    ``subsystem.metric`` (``stream.frames_total``,
    ``parallel.worker_restarts``). Asking twice for the same name
    returns the same instrument; asking for a name already registered
    as a different kind raises :class:`~repro.errors.ConfigError`.
    """

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config or TelemetryConfig()
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def _get(self, table: dict, others: tuple[dict, ...], name: str, factory):
        if not name or not isinstance(name, str):
            raise ConfigError(f"metric name must be a non-empty string, got {name!r}")
        with self._lock:
            if any(name in other for other in others):
                raise ConfigError(
                    f"metric {name!r} already registered as a different kind"
                )
            inst = table.get(name)
            if inst is None:
                inst = table[name] = factory()
            return inst

    def counter(self, name: str) -> Counter | NullCounter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(
            self._counters, (self._gauges, self._histograms), name, Counter
        )

    def gauge(self, name: str) -> Gauge | NullGauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(
            self._gauges, (self._counters, self._histograms), name, Gauge
        )

    def histogram(self, name: str) -> LatencyHistogram | NullHistogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get(
            self._histograms, (self._counters, self._gauges), name,
            lambda: LatencyHistogram(self.config.latency_buckets_s),
        )

    def time(self, name: str):
        """Context manager recording a duration into ``histogram(name)``."""
        if not self.enabled:
            return _NullTimer()
        return _Timer(self.histogram(name))

    def names(self) -> Iterator[str]:
        with self._lock:
            yield from sorted(
                [*self._counters, *self._gauges, *self._histograms]
            )

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument's current value."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: v.value for k, v in sorted(counters.items())},
            "gauges": {k: v.value for k, v in sorted(gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(histograms.items())
            },
        }

    def delta(self, since: dict | None = None, frames: int | None = None) -> dict:
        """Windowed view: per-instrument change since a prior snapshot.

        ``since`` is a dict previously returned by :meth:`snapshot` (or
        :meth:`delta` itself, whose ``"end"`` key is a snapshot);
        ``None`` means "since the registry was created", making the
        deltas equal to the cumulative totals. Counters registered
        after ``since`` delta from zero.

        Returns a JSON-ready dict::

            {
              "counters":   {name: increment, ...},
              "gauges":     {name: current_value, ...},   # point-in-time
              "histograms": {name: {"count": dc, "total_s": dt,
                                    "mean_s": dt/dc or 0.0}, ...},
              "frames":     N,            # only when frames= is given
              "rates_per_frame": {name: increment / N, ...},  # ditto
              "end":        <full snapshot>,   # baseline for the next call
            }

        This is the controller's input primitive: policy decisions are
        pure functions of these deltas, never of cumulative totals, so
        a long-lived stream behaves identically to a fresh one.
        """
        end = self.snapshot()
        base = since or {}
        base_counters = base.get("counters", {})
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in end["counters"].items()
        }
        base_hists = base.get("histograms", {})
        histograms = {}
        for name, cur in end["histograms"].items():
            prev = base_hists.get(name, {})
            dcount = cur["count"] - prev.get("count", 0)
            dtotal = cur["total_s"] - prev.get("total_s", 0.0)
            histograms[name] = {
                "count": dcount,
                "total_s": dtotal,
                "mean_s": dtotal / dcount if dcount > 0 else 0.0,
            }
        out = {
            "counters": counters,
            "gauges": dict(end["gauges"]),
            "histograms": histograms,
            "end": end,
        }
        if frames is not None:
            if frames < 1:
                raise ConfigError(f"frames must be >= 1, got {frames}")
            out["frames"] = frames
            out["rates_per_frame"] = {
                name: value / frames for name, value in counters.items()
            }
        return out


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()
