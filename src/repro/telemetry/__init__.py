"""Serving-path observability: counters, gauges, latency histograms.

See :mod:`repro.telemetry.registry` for the instrument semantics and
:func:`repro.bench.reporting.format_metrics` for text rendering.
"""

from .registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
)

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricsRegistry"]
