"""Numba JIT emitter: compile a :class:`KernelSpec` to native code.

This is the third emitter fed by the kernel IR (after the simulator DSL
in :mod:`repro.kernels.build` and the CUDA text in
:mod:`repro.cudagen.generator`): it renders any spec — every paper
level A..G, custom pass stacks like ``"A+predication"``, and
:class:`~repro.kernels.ir.FusionPass` fused tails — into Python source
for a *scalar per-pixel* kernel and compiles it with
``@numba.njit(parallel=True, cache=True)``, ``prange`` over pixels.

The emitted body mirrors :func:`repro.kernels.build._frame_body`
expression for expression (branchy vs predicated updates, kept vs
recomputed diffs, the stable descending bubble sort, the first-min
virtual component, and the register-resident fused
threshold/shadow/histogram tail), with every numeric constant passed in
pre-cast to the run dtype, so masks, mixture state and shadow/class
maps are bit-identical to the ``cpu`` and ``sim`` backends in both
float32 and float64 (the oracle tests in ``tests/test_jit.py`` pin
this).

Numba is an **optional** dependency (the ``[jit]`` extra) and is never
imported at module import time.  Two engines exist:

* ``"numba"`` — the production path: the generated source is written
  to a small on-disk cache directory (numba's ``cache=True`` needs a
  real file to key its disk cache on), imported, decorated and warmed
  eagerly so compilation happens once at model construction;
* ``"python"`` — the same generated source executed interpreted
  (``prange`` degrades to ``range``).  Slow, but it runs the *exact*
  kernel text, which is what lets the bit-identity oracle tests run in
  environments without numba.

Compiled kernels are memoised in a process-wide :class:`KernelCache`
keyed by ``(spec fingerprint, dtype, shape)`` per engine; the heavier
numba dispatcher underneath is shared across shapes, so a new shape
only pays a type-specialisation warm-up, not a fresh parse.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config import resolve_dtype
from ..errors import ConfigError, JitUnavailableError
from .ir import KernelSpec

__all__ = [
    "numba_available",
    "numba_unavailable_reason",
    "spec_fingerprint",
    "emit_kernel_source",
    "CompiledKernel",
    "KernelCache",
    "get_kernel",
    "clear_cache",
    "jit_cache_dir",
]

#: Engines :func:`get_kernel` accepts.
ENGINES = ("numba", "python")

#: Environment override for the generated-source / numba disk cache.
JIT_CACHE_DIR_ENV = "REPRO_JIT_CACHE_DIR"


# ----------------------------------------------------------------------
# Numba availability probe (never a hard import)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NumbaStatus:
    """Result of the one-time numba import probe."""

    available: bool
    reason: str | None = None


_NUMBA_STATUS: NumbaStatus | None = None
_PROBE_LOCK = threading.Lock()


def _probe_numba() -> NumbaStatus:
    global _NUMBA_STATUS
    if _NUMBA_STATUS is None:
        with _PROBE_LOCK:
            if _NUMBA_STATUS is None:
                try:
                    import numba  # noqa: F401
                except Exception as exc:  # ImportError, broken install…
                    _NUMBA_STATUS = NumbaStatus(
                        False, f"numba import failed: {exc}"
                    )
                else:
                    _NUMBA_STATUS = NumbaStatus(True, None)
    return _NUMBA_STATUS


def numba_available() -> bool:
    """Whether the numba engine can be used in this process."""
    return _probe_numba().available


def numba_unavailable_reason() -> str | None:
    """Why numba is unavailable (``None`` when it is available)."""
    return _probe_numba().reason


def _reset_numba_probe() -> None:
    """Testing hook: forget the probe result (monkeypatch target)."""
    global _NUMBA_STATUS
    _NUMBA_STATUS = None


# ----------------------------------------------------------------------
# Spec fingerprint and source cache directory
# ----------------------------------------------------------------------
def spec_fingerprint(spec: KernelSpec, num_gaussians: int) -> str:
    """Stable content hash of everything the emitted source depends on.

    The dtype is *not* part of the fingerprint — the source is
    dtype-agnostic (constants arrive pre-cast as arguments) — but the
    component count is, because the per-component registers are
    unrolled into the source text, and so is the model family, whose
    match/update semantics select the emitted body.
    """
    spec.validate()
    payload = "|".join(
        str(part)
        for part in (
            "v2",
            spec.model.name,
            spec.update,
            spec.sort,
            spec.scan,
            ",".join(spec.fused),
            int(num_gaussians),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def jit_cache_dir() -> Path:
    """Directory holding generated kernel sources (and numba's disk
    cache next to them).  Override with ``REPRO_JIT_CACHE_DIR``."""
    override = os.environ.get(JIT_CACHE_DIR_ENV)
    if override:
        path = Path(override).expanduser()
    else:
        path = Path(tempfile.gettempdir()) / "repro-jit-cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------
#: Positional constant arguments every emitted kernel takes, in order,
#: pre-cast to the run dtype (see :func:`const_args`).
CONST_ARGS = (
    "alpha", "oma", "gamma1", "gamma2", "init_w", "init_sd", "sd_floor",
    "min_contrast", "sh_lo", "sh_hi", "v255", "zero", "one", "age_cap",
)


def const_args(cfg) -> tuple:
    """The emitted kernel's constant arguments from a
    :class:`~repro.kernels.common.KernelConfig`, as run-dtype scalars
    (the pre-cast discipline that keeps float32 bit-identical).  Every
    kernel takes the full tuple regardless of family; a family simply
    ignores the constants it has no use for (MoG ignores ``age_cap``,
    DMSG ignores the decay and weight constants)."""
    t = cfg.dtype.type
    return (
        t(cfg.alpha), t(cfg.one_minus_alpha), t(cfg.gamma1), t(cfg.gamma2),
        t(cfg.initial_weight), t(cfg.initial_sd), t(cfg.sd_floor),
        t(cfg.min_contrast), t(cfg.shadow_alpha_low), t(cfg.shadow_alpha_high),
        t(255.0), t(0.0), t(1.0), t(cfg.age_cap),
    )


def _emit_update(lines, spec: KernelSpec, k: int) -> None:
    """Steps 2-4 for component ``k`` (mirrors ``_frame_body``)."""
    e = lines.append
    if spec.update == "branchy":
        # Algorithm 4: branch per component.
        e(f"d{k} = abs(x - m{k})")
        e(f"if d{k} < gamma1 * sd{k}:")
        e(f"    w{k} = w{k} * alpha + oma")
        e(f"    rho = oma / w{k}")
        e("    if rho > one:")
        e("        rho = one")
        e(f"    m{k} = (one - rho) * m{k} + rho * x")
        e(f"    var = (one - rho) * (sd{k} * sd{k}) + rho * (d{k} * d{k})")
        e("    sdn = np.sqrt(var)")
        e("    if sdn < sd_floor:")
        e("        sdn = sd_floor")
        e(f"    sd{k} = sdn")
        e("    any_match = True")
        e("else:")
        e(f"    w{k} = w{k} * alpha")
        return
    # Algorithm 5: unconditional arithmetic, blended assignments.
    diff = f"d{k}" if spec.keep_diff else "dk"
    e(f"{diff} = abs(x - m{k})")
    e(f"matched = {diff} < gamma1 * sd{k}")
    e("matchf = one if matched else zero")
    e(f"w{k} = w{k} * alpha + matchf * oma")
    e(f"rho = oma / w{k}")
    e("if rho > one:")
    e("    rho = one")
    e(f"m_upd = (one - rho) * m{k} + rho * x")
    e(f"var = (one - rho) * (sd{k} * sd{k}) + rho * ({diff} * {diff})")
    e("sd_upd = np.sqrt(var)")
    e("if sd_upd < sd_floor:")
    e("    sd_upd = sd_floor")
    e(f"m{k} = (one - matchf) * m{k} + matchf * m_upd")
    e(f"sd{k} = (one - matchf) * sd{k} + matchf * sd_upd")
    e("any_match = any_match or matched")


def _emit_virtual(lines, spec: KernelSpec, k_count: int) -> None:
    """Step 5: replace the weakest component on a total miss
    (first minimum wins, matching ``np.argmin``)."""
    e = lines.append
    e("if not any_match:")
    e("    min_w = w0")
    e("    min_k = 0")
    for k in range(1, k_count):
        e(f"    if w{k} < min_w:")
        e(f"        min_w = w{k}")
        e(f"        min_k = {k}")
    for k in range(k_count):
        e(f"    if min_k == {k}:")
        e(f"        w{k} = init_w")
        e(f"        m{k} = x")
        e(f"        sd{k} = init_sd")
        if spec.keep_diff:
            e(f"        d{k} = zero")


def _emit_sort(lines, k_count: int) -> None:
    """Step 7: stable descending bubble sort by rank = w/sd, fully
    unrolled (mirrors ``rank_and_sort``; diffs travel with their
    component)."""
    e = lines.append
    for k in range(k_count):
        e(f"r{k} = w{k} / sd{k}")
    for end in range(k_count - 1, 0, -1):
        for j in range(end):
            a, b = j, j + 1
            e(f"if r{a} < r{b}:")
            for name in ("r", "w", "m", "sd", "d"):
                e(f"    tmp = {name}{a}")
                e(f"    {name}{a} = {name}{b}")
                e(f"    {name}{b} = tmp")


def _emit_scan(lines, spec: KernelSpec, k_count: int) -> None:
    """Step 6: foreground decision.  The break scan's early exit and
    the flat scan compute the same OR; the recompute scan re-derives
    the diff from the *updated* means (level F)."""
    e = lines.append
    if spec.scan == "recompute":
        terms = [
            f"(w{k} >= gamma2 and abs(x - m{k}) < gamma1 * sd{k})"
            for k in range(k_count)
        ]
    else:
        terms = [
            f"(w{k} >= gamma2 and d{k} < gamma1 * sd{k})"
            for k in range(k_count)
        ]
    e("bg = " + terms[0])
    for term in terms[1:]:
        e("bg = bg or " + term)


def _emit_fused_tail(lines, spec: KernelSpec, k_count: int) -> None:
    """The fused threshold/shadow/histogram tail, register-resident
    (mirrors :func:`repro.kernels.fusion.fused_tail`)."""
    e = lines.append
    stages = spec.fused
    e("best_w = w0")
    e("best_m = m0")
    for k in range(1, k_count):
        e(f"if w{k} > best_w:")
        e(f"    best_w = w{k}")
        e(f"    best_m = m{k}")
    e("bg_est = best_m")
    e("if bg_est < zero:")
    e("    bg_est = zero")
    e("if bg_est > v255:")
    e("    bg_est = v255")
    e("fgf = not bg")
    e("shf = False")
    if "threshold" in stages:
        e("dd = abs(x - bg_est)")
        e("fgf = fgf and (dd >= min_contrast)")
    if "shadow" in stages:
        e("den = bg_est")
        e("if den < one:")
        e("    den = one")
        e("ratio = x / den")
        e("shf = fgf and (ratio >= sh_lo) and (ratio < sh_hi)")
        e("shadow[i] = 255 if shf else 0")
        e("fgf = fgf and not shf")
    if "histogram" in stages:
        e("classes[i] = 2 if fgf else (1 if shf else 0)")
    e("bg = not fgf")


def _emit_dmsg_branchy(lines) -> None:
    """DMSG match/update/swap, branchy form (mirrors
    :func:`repro.kernels.common.dmsg_branchy_body` and the
    :class:`repro.dmsg.DmsgVectorized` oracle expression for
    expression)."""
    e = lines.append
    e("bg = False")
    e("d0 = abs(x - m0)")
    e("if d0 < gamma1 * sd0:")
    e("    bg = True")
    e("    agen = w0 + one")
    e("    if agen > age_cap:")
    e("        agen = age_cap")
    e("    w0 = agen")
    e("    rho = one / agen")
    e("    m0 = (one - rho) * m0 + rho * x")
    e("    var = (one - rho) * (sd0 * sd0) + rho * (d0 * d0)")
    e("    sdn = np.sqrt(var)")
    e("    if sdn < sd_floor:")
    e("        sdn = sd_floor")
    e("    sd0 = sdn")
    e("else:")
    e("    d1 = abs(x - m1)")
    e("    if w1 > zero and d1 < gamma1 * sd1:")
    e("        agen = w1 + one")
    e("        if agen > age_cap:")
    e("            agen = age_cap")
    e("        w1 = agen")
    e("        rho = one / agen")
    e("        m1 = (one - rho) * m1 + rho * x")
    e("        var = (one - rho) * (sd1 * sd1) + rho * (d1 * d1)")
    e("        sdn = np.sqrt(var)")
    e("        if sdn < sd_floor:")
    e("            sdn = sd_floor")
    e("        sd1 = sdn")
    e("    else:")
    e("        w1 = one")
    e("        m1 = x")
    e("        sd1 = init_sd")
    _emit_dmsg_swap(lines)


def _emit_dmsg_predicated(lines) -> None:
    """DMSG with 0/1-blended updates — same instructions every lane
    (mirrors :func:`repro.kernels.common.dmsg_predicated_body`).  The
    blends are exactly equal to the branchy selection for the finite,
    non-negative operands the update maintains, so branchy and
    predicated DMSG kernels are bit-identical."""
    e = lines.append
    e("d0 = abs(x - m0)")
    e("matched_b = d0 < gamma1 * sd0")
    e("bg = matched_b")
    e("mb = one if matched_b else zero")
    e("agen0 = w0 + one")
    e("if agen0 > age_cap:")
    e("    agen0 = age_cap")
    e("rho = one / agen0")
    e("m0u = (one - rho) * m0 + rho * x")
    e("var = (one - rho) * (sd0 * sd0) + rho * (d0 * d0)")
    e("s0u = np.sqrt(var)")
    e("if s0u < sd_floor:")
    e("    s0u = sd_floor")
    e("w0 = (one - mb) * w0 + mb * agen0")
    e("m0 = (one - mb) * m0 + mb * m0u")
    e("sd0 = (one - mb) * sd0 + mb * s0u")
    e("d1 = abs(x - m1)")
    e("matched_c = w1 > zero and d1 < gamma1 * sd1")
    e("mc = one if matched_c else zero")
    e("agen1 = w1 + one")
    e("if agen1 > age_cap:")
    e("    agen1 = age_cap")
    e("rho = one / agen1")
    e("m1u = (one - rho) * m1 + rho * x")
    e("var = (one - rho) * (sd1 * sd1) + rho * (d1 * d1)")
    e("s1u = np.sqrt(var)")
    e("if s1u < sd_floor:")
    e("    s1u = sd_floor")
    # The miss path three-way blend: absorb into the candidate when it
    # matched, re-seed it otherwise; a background match keeps it as-is.
    e("a1_miss = (one - mc) * one + mc * agen1")
    e("m1_miss = (one - mc) * x + mc * m1u")
    e("s1_miss = (one - mc) * init_sd + mc * s1u")
    e("w1 = (one - mb) * a1_miss + mb * w1")
    e("m1 = (one - mb) * m1_miss + mb * m1")
    e("sd1 = (one - mb) * s1_miss + mb * sd1")
    _emit_dmsg_swap(lines)


def _emit_dmsg_swap(lines) -> None:
    """The age-gated mode swap shared by both DMSG update forms: the
    candidate becomes the background, the demoted background becomes an
    *empty* candidate (age 0) — preserving the ``a1 <= a0`` invariant
    the max-weight background estimate relies on."""
    e = lines.append
    e("if w1 > w0:")
    e("    tm = m0")
    e("    ts = sd0")
    e("    w0 = w1")
    e("    m0 = m1")
    e("    sd0 = sd1")
    e("    w1 = zero")
    e("    m1 = tm")
    e("    sd1 = ts")


def emit_kernel_source(spec: KernelSpec, num_gaussians: int) -> str:
    """Render ``spec`` to the Python source of one per-pixel kernel.

    The function is named ``kernel`` and takes
    ``(frame, w, m, sd, fg, shadow, classes, *CONST_ARGS)`` where
    ``frame`` is the flat frame already cast to the run dtype,
    ``w``/``m``/``sd`` are the ``(K, N)`` mixture planes (updated in
    place), ``fg``/``shadow``/``classes`` are flat uint8 outputs, and
    the constants are run-dtype scalars (:func:`const_args`).  The
    per-component state is fully unrolled into scalar locals — the
    CPU analogue of the paper's register residency.

    Group-structured specs (level G tiling) are emitted as the same
    per-frame kernel: tiling is a GPU memory-residency axis and does
    not change the per-pixel arithmetic, so masks stay bit-identical
    to the grouped simulator kernel.
    """
    spec.validate()
    k_count = int(num_gaussians)
    if not 1 <= k_count <= 8:
        raise ConfigError(
            f"num_gaussians must be in [1, 8], got {num_gaussians}"
        )
    fp = spec_fingerprint(spec, k_count)

    body: list[str] = []
    e = body.append
    e("x = frame[i]")
    for k in range(k_count):
        e(f"w{k} = w[{k}, i]")
        e(f"m{k} = m[{k}, i]")
        e(f"sd{k} = sd[{k}, i]")
    if spec.model.name == "dmsg":
        # DMSG has exactly two modes, classifies against the pre-update
        # background mode, and has no sort/scan axes to emit — the
        # branchy/predicated distinction is the only spec axis the
        # instruction stream depends on.
        if k_count != 2:
            raise ConfigError(
                f"DMSG kernels have exactly 2 modes, got K={k_count}"
            )
        if spec.update == "branchy":
            _emit_dmsg_branchy(body)
        else:
            _emit_dmsg_predicated(body)
    else:
        e("any_match = False")
        for k in range(k_count):
            _emit_update(body, spec, k)
        _emit_virtual(body, spec, k_count)
        if spec.sort:
            _emit_sort(body, k_count)
        _emit_scan(body, spec, k_count)
    if spec.fused:
        _emit_fused_tail(body, spec, k_count)
    for k in range(k_count):
        e(f"w[{k}, i] = w{k}")
        e(f"m[{k}, i] = m{k}")
        e(f"sd[{k}, i] = sd{k}")
    e("fg[i] = 0 if bg else 255")

    indented = "\n".join("        " + line for line in body)
    header = (
        f'"""Generated by repro.kernels.jit — do not edit.\n\n'
        f"spec: {spec.name} (model={spec.model.name}, "
        f"update={spec.update}, sort={spec.sort}, "
        f"scan={spec.scan}, fused={list(spec.fused)}), K={k_count}, "
        f"fingerprint={fp}\n"
        f'"""\n'
        "import numpy as np\n\n"
        "try:\n"
        "    from numba import prange\n"
        "except ImportError:  # interpreted engine\n"
        "    prange = range\n\n"
    )
    signature = (
        "def kernel(frame, w, m, sd, fg, shadow, classes,\n"
        "           " + ", ".join(CONST_ARGS) + "):\n"
    )
    return (
        header
        + signature
        + "    n = frame.shape[0]\n"
        + "    for i in prange(n):\n"
        + indented
        + "\n"
    )


# ----------------------------------------------------------------------
# Compilation + process-wide warm cache
# ----------------------------------------------------------------------
@dataclass
class CompiledKernel:
    """A ready-to-call kernel plus its provenance."""

    fn: object            # kernel(frame, w, m, sd, fg, shadow, classes, *consts)
    engine: str           # "numba" | "python"
    fingerprint: str
    dtype: np.dtype
    shape: tuple[int, int]
    source_path: Path
    compile_s: float      # wall-clock spent compiling/warming this entry

    def __call__(self, *args):
        return self.fn(*args)


def _write_source(path: Path, source: str) -> None:
    """Create the generated module file once (atomic via rename)."""
    if path.exists() and path.read_text() == source:
        return
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(source)
    os.replace(tmp, path)


def _load_module(path: Path, fingerprint: str):
    name = f"repro_jit_{fingerprint}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class KernelCache:
    """Compile-once warm cache keyed by (fingerprint, dtype, shape).

    Two tiers: the per-key :class:`CompiledKernel` entries the callers
    see, and the underlying callables memoised per (fingerprint,
    engine) — a numba dispatcher is expensive to build but serves every
    shape and dtype, so a new key usually only pays the warm-up call
    that triggers (or reuses) a type specialisation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple, CompiledKernel] = {}
        self._dispatchers: dict[tuple, tuple[object, Path]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dispatchers.clear()

    # -- internals -----------------------------------------------------
    def _dispatcher(self, spec: KernelSpec, k_count: int, engine: str):
        fp = spec_fingerprint(spec, k_count)
        key = (fp, engine)
        with self._lock:
            hit = self._dispatchers.get(key)
        if hit is not None:
            return fp, hit[0], hit[1]
        source = emit_kernel_source(spec, k_count)
        path = jit_cache_dir() / f"{spec.model.name}_jit_{fp}.py"
        _write_source(path, source)
        module = _load_module(path, fp)
        fn = module.kernel
        if engine == "numba":
            if not numba_available():
                raise JitUnavailableError(
                    numba_unavailable_reason() or "numba is not available"
                )
            from numba import njit

            # error_model="numpy" is load-bearing: unclaimed components
            # carry weight 0, so the predicated rho = oma/w divides by
            # zero by design; IEEE inf (clamped to 1 next line) is the
            # pinned semantics, not an exception.
            fn = njit(parallel=True, cache=True, error_model="numpy")(fn)
        return fp, fn, path

    def _warm(self, fn, dtype: np.dtype, k_count: int) -> None:
        """Trigger (or reuse) the type specialisation for ``dtype`` on
        a one-pixel dummy so compilation cost lands here, not on the
        first real frame."""
        t = dtype.type
        consts = (
            t(0.99), t(0.01), t(2.5), t(0.15), t(0.05), t(30.0), t(4.0),
            t(12.0), t(0.45), t(0.95), t(255.0), t(0.0), t(1.0), t(128.0),
        )
        frame = np.zeros(1, dtype=dtype)
        w = np.zeros((k_count, 1), dtype=dtype)
        w[0] = 1.0
        m = np.zeros((k_count, 1), dtype=dtype)
        sd = np.full((k_count, 1), 4.0, dtype=dtype)
        byte = np.zeros(1, dtype=np.uint8)
        with np.errstate(divide="ignore", invalid="ignore"):
            fn(frame, w, m, sd, byte, byte.copy(), byte.copy(), *consts)

    # -- public --------------------------------------------------------
    def get(
        self,
        spec: KernelSpec,
        num_gaussians: int,
        dtype,
        shape: tuple[int, int],
        engine: str = "numba",
    ) -> CompiledKernel:
        """The compiled kernel for ``(spec, dtype, shape)``; compiles
        and warms on first use, returns the cached entry afterwards
        (``compile_s == 0.0`` on a cache hit)."""
        if engine not in ENGINES:
            raise ConfigError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        dt = resolve_dtype(dtype)
        k_count = int(num_gaussians)
        fp = spec_fingerprint(spec, k_count)
        key = (fp, dt.str, tuple(shape), engine)
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            return CompiledKernel(
                fn=entry.fn, engine=entry.engine, fingerprint=fp,
                dtype=dt, shape=tuple(shape),
                source_path=entry.source_path, compile_s=0.0,
            )
        start = time.perf_counter()
        fp, fn, path = self._dispatcher(spec, k_count, engine)
        if engine == "numba":
            self._warm(fn, dt, k_count)
        compile_s = time.perf_counter() - start
        entry = CompiledKernel(
            fn=fn, engine=engine, fingerprint=fp, dtype=dt,
            shape=tuple(shape), source_path=path, compile_s=compile_s,
        )
        with self._lock:
            self._dispatchers.setdefault((fp, engine), (fn, path))
            self._entries.setdefault(key, entry)
        return entry


#: The process-wide cache every model shares ("compile once").
_GLOBAL_CACHE = KernelCache()


def get_kernel(
    spec: KernelSpec,
    num_gaussians: int,
    dtype,
    shape: tuple[int, int],
    engine: str = "numba",
) -> CompiledKernel:
    """Fetch (compiling if needed) from the process-wide cache."""
    return _GLOBAL_CACHE.get(spec, num_gaussians, dtype, shape, engine)


def cached_kernel_count() -> int:
    """Entries currently in the process-wide cache (telemetry)."""
    return len(_GLOBAL_CACHE)


def clear_cache() -> None:
    """Drop every cached kernel (testing hook)."""
    _GLOBAL_CACHE.clear()
