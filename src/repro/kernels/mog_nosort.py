"""Level D: divergent-branch elimination.

Ranking and sorting only exist to let a CPU exit the foreground scan
early; on a GPU the scan's OR is order-independent, so the sort's
compare-and-swap branches and the scan's early-exit branches are pure
divergence. This kernel drops both: no rank, no sort, and a flat
unconditional check of all components (the paper's Algorithm 3).
Updates are still branchy (Algorithm 4) — that is level E's job.
"""

from __future__ import annotations

import numpy as np

from .common import (
    KernelConfig,
    branchy_update_match,
    branchy_virtual_component,
    foreground_scan_flat,
    load_components,
    store_components,
    store_foreground,
)


def make_nosort_kernel(layout, cfg: KernelConfig, frame_buf, fg_buf):
    """Build the level-D kernel (expects an SoA layout)."""

    def mog_nosort(ctx):
        pixel = ctx.thread_id()
        x = ctx.load(frame_buf, pixel).astype(cfg.dtype)

        w, m, sd = load_components(ctx, layout, cfg, pixel)
        diff = []
        any_match = ctx.var(False, np.bool_)
        for k in ctx.loop(cfg.num_gaussians):
            dk = ctx.var(abs(x - m[k].get()))
            matched = dk < sd[k] * cfg.gamma1
            with ctx.if_(matched):
                branchy_update_match(ctx, cfg, x, w[k], m[k], sd[k], dk)
                any_match.set(True)
            with ctx.else_():
                w[k].set(w[k] * cfg.alpha)
            diff.append(dk)

        branchy_virtual_component(ctx, cfg, x, w, m, sd, diff, any_match)
        background = foreground_scan_flat(ctx, cfg, w, sd, diff)

        store_components(ctx, layout, cfg, pixel, w, m, sd)
        store_foreground(ctx, fg_buf, pixel, background)

    return mog_nosort
