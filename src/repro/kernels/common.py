"""Shared kernel building blocks.

The helpers here are the kernel-side mirror of the pinned semantics in
:mod:`repro.mog.update`; each mirrors the vectorized implementation
expression-for-expression so that, in float64, the simulated GPU
produces bit-identical foreground masks (tests enforce this).

All numeric constants are pre-cast to the run dtype in
:class:`KernelConfig` so float32 kernels agree with the float32
vectorized path: e.g. ``1 - alpha`` must be computed *in float32*, not
computed in double and then cast, or the two implementations drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DMSG_AGE_CAP, FusionParams, MoGParams, resolve_dtype
from ..gpusim.dsl import KernelContext, MutVar, Vec


@dataclass(frozen=True)
class KernelConfig:
    """Immutable numeric configuration of one per-pixel kernel.

    ``num_gaussians`` is the per-pixel component count of the *model
    family* being emitted (``params.num_gaussians`` for MoG, the fixed
    mode count 2 for DMSG) — pass the spec's family to
    :meth:`from_params` so kernels, layouts and shared-tile sizing all
    agree.  ``age_cap`` is the DMSG running-average ceiling
    (:data:`~repro.config.DMSG_AGE_CAP`); MoG kernels never read it.

    The ``min_contrast``/``shadow_*`` fields are the fused post-stage
    thresholds (:class:`~repro.config.FusionParams`), also pre-cast to
    the run dtype; per-frame kernels without fused stages simply never
    read them.
    """

    num_gaussians: int
    dtype: np.dtype
    alpha: float       # retention factor (1 - learning rate), in run dtype
    one_minus_alpha: float
    gamma1: float
    gamma2: float
    initial_weight: float
    initial_sd: float
    sd_floor: float
    min_contrast: float = 12.0
    shadow_alpha_low: float = 0.45
    shadow_alpha_high: float = 0.95
    age_cap: float = float(DMSG_AGE_CAP)

    @classmethod
    def from_params(
        cls,
        params: MoGParams,
        dtype: str | np.dtype = "double",
        fusion: FusionParams | None = None,
        model=None,
    ) -> "KernelConfig":
        dt = resolve_dtype(dtype)
        t = dt.type
        alpha = t(1.0 - params.learning_rate)
        oma = t(1.0) - alpha  # computed in the run dtype (see module doc)
        fusion = fusion or FusionParams()
        k_count = (
            model.component_count(params)
            if model is not None else params.num_gaussians
        )
        return cls(
            num_gaussians=k_count,
            dtype=dt,
            alpha=float(alpha),
            one_minus_alpha=float(oma),
            gamma1=float(t(params.match_threshold)),
            gamma2=float(t(params.background_weight)),
            initial_weight=float(t(params.initial_weight)),
            initial_sd=float(t(params.initial_sd)),
            sd_floor=float(t(params.sd_floor)),
            min_contrast=float(t(fusion.min_contrast)),
            shadow_alpha_low=float(t(fusion.shadow_alpha_low)),
            shadow_alpha_high=float(t(fusion.shadow_alpha_high)),
            age_cap=float(t(DMSG_AGE_CAP)),
        )


# ----------------------------------------------------------------------
# Component update (steps 3-4 of repro.mog.update)
# ----------------------------------------------------------------------
def branchy_update_match(
    ctx: KernelContext,
    cfg: KernelConfig,
    x: Vec,
    w: MutVar,
    m: MutVar,
    sd: MutVar,
    diff: MutVar,
) -> None:
    """The matched-component body of Algorithm 4 (runs under if_)."""
    w.set(w * cfg.alpha + cfg.one_minus_alpha)
    rho = ctx.minimum(cfg.one_minus_alpha / w.get(), 1.0)
    m.set((1.0 - rho) * m.get() + rho * x)
    var = (1.0 - rho) * (sd.get() * sd.get()) + rho * (diff.get() * diff.get())
    sd.set(ctx.maximum(ctx.sqrt(var), cfg.sd_floor))


def predicated_update(
    ctx: KernelContext,
    cfg: KernelConfig,
    x: Vec,
    w: MutVar,
    m: MutVar,
    sd: MutVar,
    diff: Vec,
    matchf: Vec,
) -> None:
    """Algorithm 5: unconditional arithmetic, blended assignments.

    ``matchf`` is the match predicate as a 0/1 value in the run dtype.
    """
    w.set(w * cfg.alpha + matchf * cfg.one_minus_alpha)
    rho = ctx.minimum(cfg.one_minus_alpha / w.get(), 1.0)
    m_upd = (1.0 - rho) * m.get() + rho * x
    var = (1.0 - rho) * (sd.get() * sd.get()) + rho * (diff * diff)
    sd_upd = ctx.maximum(ctx.sqrt(var), cfg.sd_floor)
    m.set((1.0 - matchf) * m.get() + matchf * m_upd)
    sd.set((1.0 - matchf) * sd.get() + matchf * sd_upd)


# ----------------------------------------------------------------------
# Virtual component (step 5)
# ----------------------------------------------------------------------
def branchy_virtual_component(
    ctx: KernelContext,
    cfg: KernelConfig,
    x: Vec,
    w: list[MutVar],
    m: list[MutVar],
    sd: list[MutVar],
    diff: list[MutVar],
    any_match: MutVar,
) -> None:
    """Replace the weakest component with branches (levels A-D)."""
    k_count = cfg.num_gaussians
    with ctx.if_(~any_match):
        min_w = ctx.var(w[0].get())
        min_k = ctx.var(0, np.int64)
        for k in ctx.loop(k_count - 1):
            k = k + 1
            with ctx.if_(w[k] < min_w):
                min_w.set(w[k].get())
                min_k.set(k)
        for k in ctx.loop(k_count):
            with ctx.if_(min_k.eq(k)):
                w[k].set(cfg.initial_weight)
                m[k].set(x)
                sd[k].set(cfg.initial_sd)
                diff[k].set(0.0)


def predicated_virtual_component(
    ctx: KernelContext,
    cfg: KernelConfig,
    x: Vec,
    w: list[MutVar],
    m: list[MutVar],
    sd: list[MutVar],
    diff: list[MutVar] | None,
    any_match: MutVar,
) -> None:
    """Replace the weakest component with selects (levels E-G).

    One divergent branch remains (the outer no-match test); the interior
    is pure predicated arithmetic. ``diff`` may be ``None`` for the
    regopt family, which keeps no diff array.
    """
    k_count = cfg.num_gaussians
    with ctx.if_(~any_match):
        min_w = ctx.var(w[0].get())
        min_k = ctx.var(0, np.int64)
        for k in ctx.loop(k_count - 1):
            k = k + 1
            is_min = w[k] < min_w
            min_w.set(ctx.select(is_min, w[k].get(), min_w.get()))
            min_k.set(ctx.select(is_min, np.int64(k), min_k.get()))
        for k in ctx.loop(k_count):
            repl = min_k.eq(k)
            w[k].set(ctx.select(repl, cfg.initial_weight, w[k].get()))
            m[k].set(ctx.select(repl, x, m[k].get()))
            sd[k].set(ctx.select(repl, cfg.initial_sd, sd[k].get()))
            if diff is not None:
                diff[k].set(ctx.select(repl, 0.0, diff[k].get()))


# ----------------------------------------------------------------------
# Ranking & sorting (step 7, levels A-C)
# ----------------------------------------------------------------------
def rank_and_sort(
    ctx: KernelContext,
    w: list[MutVar],
    m: list[MutVar],
    sd: list[MutVar],
    diff: list[MutVar],
) -> None:
    """Stable descending bubble sort by rank = w/sd (Algorithm 1,
    lines 16-21). Every compare-and-swap is a divergent branch — the
    control flow level D eliminates."""
    k_count = len(w)
    rank = [ctx.var(w[k].get() / sd[k].get()) for k in range(k_count)]

    def swap(a: MutVar, b: MutVar) -> None:
        ta, tb = a.get(), b.get()
        a.set(tb)
        b.set(ta)

    for end in ctx.loop(k_count - 1):
        end = k_count - 1 - end
        for j in ctx.loop(end):
            with ctx.if_(rank[j] < rank[j + 1]):
                swap(rank[j], rank[j + 1])
                swap(w[j], w[j + 1])
                swap(m[j], m[j + 1])
                swap(sd[j], sd[j + 1])
                swap(diff[j], diff[j + 1])


# ----------------------------------------------------------------------
# Foreground decision (step 6)
# ----------------------------------------------------------------------
def foreground_scan_break(
    ctx: KernelContext,
    cfg: KernelConfig,
    w: list[MutVar],
    sd: list[MutVar],
    diff: list[MutVar],
) -> MutVar:
    """Early-exit scan (Algorithm 2): CPU-friendly, GPU-divergent."""
    background = ctx.var(False, np.bool_)
    done = ctx.var(False, np.bool_)
    for k in ctx.loop(cfg.num_gaussians):
        with ctx.if_(~done):
            hit = (w[k] >= cfg.gamma2) & (diff[k] < sd[k] * cfg.gamma1)
            with ctx.if_(hit):
                background.set(True)
                done.set(True)
    return background


def foreground_scan_flat(
    ctx: KernelContext,
    cfg: KernelConfig,
    w: list[MutVar],
    sd: list[MutVar],
    diff: list[MutVar],
) -> MutVar:
    """Unconditional scan of all components (Algorithm 3): the OR is
    order-independent, so no branch is needed at all."""
    background = ctx.var(False, np.bool_)
    for k in ctx.loop(cfg.num_gaussians):
        hit = (w[k] >= cfg.gamma2) & (diff[k] < sd[k] * cfg.gamma1)
        background.set(background | hit)
    return background


def foreground_scan_recompute(
    ctx: KernelContext,
    cfg: KernelConfig,
    x: Vec,
    w: list[MutVar],
    m: list[MutVar],
    sd: list[MutVar],
) -> MutVar:
    """Level F: diff recomputed from the *updated* means instead of
    kept live in registers — trading a register for a subtraction.
    Provably decision-equivalent to the stored-diff scan under the
    pinned update equations (see repro.mog.update, step 6 note)."""
    background = ctx.var(False, np.bool_)
    for k in ctx.loop(cfg.num_gaussians):
        d = abs(x - m[k].get())
        hit = (w[k] >= cfg.gamma2) & (d < sd[k] * cfg.gamma1)
        background.set(background | hit)
    return background


def store_foreground(ctx: KernelContext, fg_buf, pixel, background: MutVar) -> None:
    """Write the 0/255 foreground byte."""
    value = ctx.select(background.get(), np.uint8(0), np.uint8(255))
    ctx.store(fg_buf, pixel, value)


# ----------------------------------------------------------------------
# Dual-mode single Gaussian bodies (the "dmsg" model family)
# ----------------------------------------------------------------------
# Register roles: index 0 is the background mode, index 1 the candidate;
# the w plane holds the mode *age*. Semantics are pinned by the NumPy
# oracle (repro.dmsg.vectorized); both bodies mirror it expression for
# expression, and the predicated body's 0/1 blends are exactly equal to
# the branchy selection for finite operands, so the two forms produce
# bit-identical state and masks.

def _dmsg_consts(ctx: KernelContext, cfg: KernelConfig) -> dict:
    """DMSG constants as run-dtype register values.

    Unlike the MoG bodies (which pass Python floats and let the
    assignment round), the DMSG bodies keep *every* intermediate in the
    run dtype — the exact op-for-op arithmetic of the NumPy oracle — so
    DMSG state (not just masks) is bit-identical across backends in
    float32 as well as float64.
    """
    full = lambda v: ctx.full(v, cfg.dtype)  # noqa: E731
    return {
        "one": full(1.0),
        "zero": full(0.0),
        "gamma1": full(cfg.gamma1),
        "age_cap": full(cfg.age_cap),
        "sd_floor": full(cfg.sd_floor),
        "initial_sd": full(cfg.initial_sd),
    }


def dmsg_branchy_body(
    ctx: KernelContext,
    cfg: KernelConfig,
    x: Vec,
    w: list[MutVar],
    m: list[MutVar],
    sd: list[MutVar],
) -> MutVar:
    """Branch-per-path DMSG update (levels A-D shapes)."""
    c = _dmsg_consts(ctx, cfg)
    one, gamma1 = c["one"], c["gamma1"]
    background = ctx.var(False, np.bool_)
    d0 = ctx.var(abs(x - m[0].get()))
    with ctx.if_(d0 < gamma1 * sd[0].get()):
        background.set(True)
        age = ctx.minimum(w[0] + one, c["age_cap"])
        rho = one / age
        w[0].set(age)
        m[0].set((one - rho) * m[0].get() + rho * x)
        var = (one - rho) * (sd[0].get() * sd[0].get()) + rho * (d0.get() * d0.get())
        sd[0].set(ctx.maximum(ctx.sqrt(var), c["sd_floor"]))
    with ctx.else_():
        d1 = ctx.var(abs(x - m[1].get()))
        with ctx.if_((w[1] > c["zero"]) & (d1 < gamma1 * sd[1].get())):
            age = ctx.minimum(w[1] + one, c["age_cap"])
            rho = one / age
            w[1].set(age)
            m[1].set((one - rho) * m[1].get() + rho * x)
            var = (one - rho) * (sd[1].get() * sd[1].get()) + rho * (d1.get() * d1.get())
            sd[1].set(ctx.maximum(ctx.sqrt(var), c["sd_floor"]))
        with ctx.else_():
            w[1].set(one)
            m[1].set(x)
            sd[1].set(c["initial_sd"])
    # Age-gated swap: the candidate becomes the background; the demoted
    # background becomes an empty (age-0) candidate. Runs after *every*
    # update, preserving the age[1] <= age[0] invariant the background
    # estimate relies on.
    with ctx.if_(w[1] > w[0]):
        tm = m[0].get()
        ts = sd[0].get()
        w[0].set(w[1].get())
        m[0].set(m[1].get())
        sd[0].set(sd[1].get())
        w[1].set(c["zero"])
        m[1].set(tm)
        sd[1].set(ts)
    return background


def dmsg_predicated_body(
    ctx: KernelContext,
    cfg: KernelConfig,
    x: Vec,
    w: list[MutVar],
    m: list[MutVar],
    sd: list[MutVar],
) -> MutVar:
    """Predicated DMSG update (levels E+ shapes): unconditional
    arithmetic, 0/1-blended assignments, select-based swap — every lane
    runs the same instructions."""
    c = _dmsg_consts(ctx, cfg)
    one, gamma1 = c["one"], c["gamma1"]
    background = ctx.var(False, np.bool_)
    d0 = abs(x - m[0].get())
    matched_b = d0 < gamma1 * sd[0].get()
    background.set(background | matched_b)
    mb = matched_b.astype(cfg.dtype)

    age0 = ctx.minimum(w[0] + one, c["age_cap"])
    rho0 = one / age0
    m0u = (one - rho0) * m[0].get() + rho0 * x
    var0 = (one - rho0) * (sd[0].get() * sd[0].get()) + rho0 * (d0 * d0)
    s0u = ctx.maximum(ctx.sqrt(var0), c["sd_floor"])
    w[0].set((one - mb) * w[0].get() + mb * age0)
    m[0].set((one - mb) * m[0].get() + mb * m0u)
    sd[0].set((one - mb) * sd[0].get() + mb * s0u)

    d1 = abs(x - m[1].get())
    matched_c = (w[1] > c["zero"]) & (d1 < gamma1 * sd[1].get())
    mc = matched_c.astype(cfg.dtype)
    age1 = ctx.minimum(w[1] + one, c["age_cap"])
    rho1 = one / age1
    m1u = (one - rho1) * m[1].get() + rho1 * x
    var1 = (one - rho1) * (sd[1].get() * sd[1].get()) + rho1 * (d1 * d1)
    s1u = ctx.maximum(ctx.sqrt(var1), c["sd_floor"])
    # On a background miss the candidate either absorbs the sample
    # (matched) or is re-seeded from it; on a match it is untouched.
    a1_miss = (one - mc) * one + mc * age1
    m1_miss = (one - mc) * x + mc * m1u
    s1_miss = (one - mc) * c["initial_sd"] + mc * s1u
    w[1].set((one - mb) * a1_miss + mb * w[1].get())
    m[1].set((one - mb) * m1_miss + mb * m[1].get())
    sd[1].set((one - mb) * s1_miss + mb * sd[1].get())

    # Select-based age-gated swap (see dmsg_branchy_body).
    swap = w[1] > w[0]
    a0n, m0n, s0n = w[0].get(), m[0].get(), sd[0].get()
    a1n, m1n, s1n = w[1].get(), m[1].get(), sd[1].get()
    w[0].set(ctx.select(swap, a1n, a0n))
    m[0].set(ctx.select(swap, m1n, m0n))
    sd[0].set(ctx.select(swap, s1n, s0n))
    w[1].set(ctx.select(swap, c["zero"], a1n))
    m[1].set(ctx.select(swap, m0n, m1n))
    sd[1].set(ctx.select(swap, s0n, s1n))
    return background


# ----------------------------------------------------------------------
# Parameter movement between global memory and registers
# ----------------------------------------------------------------------
from ..layout.base import PARAM_M, PARAM_SD, PARAM_W  # noqa: E402


def load_components(
    ctx: KernelContext, layout, cfg: KernelConfig, pixel
) -> tuple[list[MutVar], list[MutVar], list[MutVar]]:
    """Load all K components of a pixel into register variables."""
    w, m, sd = [], [], []
    for k in ctx.loop(cfg.num_gaussians):
        w.append(ctx.var(ctx.load(layout.buffer, layout.index(ctx, k, PARAM_W, pixel))))
        m.append(ctx.var(ctx.load(layout.buffer, layout.index(ctx, k, PARAM_M, pixel))))
        sd.append(ctx.var(ctx.load(layout.buffer, layout.index(ctx, k, PARAM_SD, pixel))))
    return w, m, sd


def store_components(
    ctx: KernelContext,
    layout,
    cfg: KernelConfig,
    pixel,
    w: list[MutVar],
    m: list[MutVar],
    sd: list[MutVar],
) -> None:
    """Write all K components of a pixel back to global memory."""
    for k in ctx.loop(cfg.num_gaussians):
        ctx.store(layout.buffer, layout.index(ctx, k, PARAM_W, pixel), w[k].get())
        ctx.store(layout.buffer, layout.index(ctx, k, PARAM_M, pixel), m[k].get())
        ctx.store(layout.buffer, layout.index(ctx, k, PARAM_SD, pixel), sd[k].get())
