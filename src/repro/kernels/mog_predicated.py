"""Level E: source-level predicated execution (the paper's Algorithm 5).

The per-component match/update branch of level D is replaced by
unconditional arithmetic blended with the 0/1 match predicate::

    w  = alpha*w + match*(1-alpha)
    m  = (1-match)*m + match*f(tmp)
    sd = (1-match)*sd + match*g(tmp)

Every lane now executes the identical instruction sequence — branch
efficiency soars to ~99.5% — at the cost of computing the update values
for non-matching lanes too (and one extra live register for the
predicate value). The remaining divergent branch is the rare
virtual-component creation.
"""

from __future__ import annotations

import numpy as np

from .common import (
    KernelConfig,
    foreground_scan_flat,
    load_components,
    predicated_update,
    predicated_virtual_component,
    store_components,
    store_foreground,
)


def make_predicated_kernel(layout, cfg: KernelConfig, frame_buf, fg_buf):
    """Build the level-E kernel (expects an SoA layout)."""

    def mog_predicated(ctx):
        pixel = ctx.thread_id()
        x = ctx.load(frame_buf, pixel).astype(cfg.dtype)

        w, m, sd = load_components(ctx, layout, cfg, pixel)
        diff = []
        any_match = ctx.var(False, np.bool_)
        for k in ctx.loop(cfg.num_gaussians):
            dk = ctx.var(abs(x - m[k].get()))
            matched = dk < sd[k] * cfg.gamma1
            matchf = matched.astype(cfg.dtype)
            predicated_update(ctx, cfg, x, w[k], m[k], sd[k], dk.get(), matchf)
            any_match.set(any_match | matched)
            diff.append(dk)

        predicated_virtual_component(ctx, cfg, x, w, m, sd, diff, any_match)
        background = foreground_scan_flat(ctx, cfg, w, sd, diff)

        store_components(ctx, layout, cfg, pixel, w, m, sd)
        store_foreground(ctx, fg_buf, pixel, background)

    return mog_predicated
