"""Simulated GPU kernel for the multimodal-mean baseline (§II).

A faithful SIMT mapping of the variable-component algorithm of
:mod:`repro.baselines.multimodal_mean`: the early-exit cell scan is a
``done``-masked loop (every iteration a data-dependent — hence
divergent — branch), the per-cell loads happen under those masks
(unbalanced, partially-filled warp requests), and the background
decision still has to read *all* cell counts to form the total. This is
exactly the structure the paper predicts will not pay off on a GPU; the
bench ``benchmarks/test_related_work_multimodal.py`` measures it.

State layout (SoA, coalesced within each plane):

* ``sums``:   ``(max_cells, N)`` float64
* ``counts``: ``(max_cells, N)`` float64 (whole numbers; float keeps
  the kernel single-dtype)
"""

from __future__ import annotations

import numpy as np

from ..baselines.multimodal_mean import MultimodalMeanParams
from ..errors import LaunchError


def make_multimodal_kernel(
    sums_buf, counts_buf, frame_buf, fg_buf, params: MultimodalMeanParams,
    num_pixels: int,
):
    """Build the per-frame multimodal-mean kernel."""
    k_cells = params.max_cells
    eps = float(params.epsilon)
    frac = float(params.background_fraction)

    def mmm_kernel(ctx):
        pix = ctx.thread_id()
        x = ctx.load(frame_buf, pix).astype(np.float64)

        done = ctx.var(False, np.bool_)
        hit_count = ctx.var(0.0, np.float64)

        # Early-exit scan: the CPU's win, the warp's divergence.
        for k in ctx.loop(k_cells):
            with ctx.if_(~done):
                cnt = ctx.var(ctx.load(counts_buf, pix + k * num_pixels))
                with ctx.if_(cnt > 0.0):
                    s = ctx.var(ctx.load(sums_buf, pix + k * num_pixels))
                    mean = s / cnt
                    with ctx.if_(abs(x - mean) < eps):
                        ctx.store(sums_buf, pix + k * num_pixels, s + x)
                        ctx.store(counts_buf, pix + k * num_pixels, cnt + 1.0)
                        hit_count.set(cnt + 1.0)
                        done.set(True)

        # Total miss: replace the weakest cell (fixed-K scan).
        with ctx.if_(~done):
            min_cnt = ctx.var(ctx.load(counts_buf, pix))
            min_k = ctx.var(0, np.int64)
            for k in ctx.loop(k_cells - 1):
                k = k + 1
                c = ctx.load(counts_buf, pix + k * num_pixels)
                is_min = c < min_cnt
                min_cnt.set(ctx.select(is_min, c, min_cnt.get()))
                min_k.set(ctx.select(is_min, np.int64(k), min_k.get()))
            for k in ctx.loop(k_cells):
                with ctx.if_(min_k.eq(k)):
                    ctx.store(sums_buf, pix + k * num_pixels, x)
                    ctx.store(counts_buf, pix + k * num_pixels, 1.0)
            hit_count.set(1.0)

        # Background decision needs the total count: fixed-K traffic
        # even for pixels that resolved at the first cell.
        total = ctx.var(0.0, np.float64)
        for k in ctx.loop(k_cells):
            total.set(total + ctx.load(counts_buf, pix + k * num_pixels))

        background = hit_count >= total * frac
        ctx.store(
            fg_buf, pix, ctx.select(background, np.uint8(0), np.uint8(255))
        )

    return mmm_kernel


def make_decay_kernel(sums_buf, counts_buf, num_pixels: int, max_cells: int):
    """Halve every cell's sum and count (uniform, fully coalesced)."""

    def mmm_decay(ctx):
        pix = ctx.thread_id()
        for k in ctx.loop(max_cells):
            s = ctx.load(sums_buf, pix + k * num_pixels)
            c = ctx.load(counts_buf, pix + k * num_pixels)
            # Floor-halving, mirroring the vectorized //= 2.
            half_s = ctx.floor(s * 0.5)
            half_c = ctx.floor(c * 0.5)
            ctx.store(sums_buf, pix + k * num_pixels, half_s)
            ctx.store(counts_buf, pix + k * num_pixels, half_c)

    return mmm_decay


class MultimodalMeanGpu:
    """Host-side runner: the baseline on the simulated GPU."""

    def __init__(
        self,
        shape: tuple[int, int],
        params: MultimodalMeanParams | None = None,
        threads_per_block: int = 128,
        device=None,
    ) -> None:
        from ..gpusim.device import TESLA_C2075
        from ..gpusim.engine import SimtEngine

        self.shape = tuple(shape)
        self.params = params or MultimodalMeanParams()
        self.threads_per_block = threads_per_block
        self.engine = SimtEngine(device or TESLA_C2075)
        n = self.num_pixels
        k = self.params.max_cells
        self.sums = self.engine.memory.alloc("mmm_sums", k * n, np.float64)
        self.counts = self.engine.memory.alloc("mmm_counts", k * n, np.float64)
        self.frame_buf = self.engine.memory.alloc("mmm_frame", n, np.uint8)
        self.fg_buf = self.engine.memory.alloc("mmm_fg", n, np.uint8)
        self.frames_processed = 0

    @property
    def num_pixels(self) -> int:
        return self.shape[0] * self.shape[1]

    def apply(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise LaunchError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        flat = frame.reshape(-1).astype(np.uint8)
        n = self.num_pixels
        if self.frames_processed == 0:
            self.sums.data[:n] = flat.astype(np.float64)
            self.counts.data[:n] = 1.0
        self.frame_buf.data[:] = flat
        kernel = make_multimodal_kernel(
            self.sums, self.counts, self.frame_buf, self.fg_buf,
            self.params, n,
        )
        self.engine.launch(
            kernel, n, self.threads_per_block,
            name=f"mmm[{self.frames_processed}]",
        )
        self.frames_processed += 1
        if self.frames_processed % self.params.decay_period == 0:
            decay = make_decay_kernel(
                self.sums, self.counts, n, self.params.max_cells
            )
            self.engine.launch(decay, n, self.threads_per_block, name="mmm_decay")
        return (self.fg_buf.data != 0).reshape(self.shape)

    def apply_sequence(self, frames) -> np.ndarray:
        return np.stack([self.apply(f) for f in frames])
