"""Design-space ablation: register-resident frame-group processing.

The paper's level G creates parameter reuse by staging tiles in shared
memory. There is an alternative it does not explore: since each thread
owns one pixel for the whole frame group, the parameters could simply
stay *in registers* across the group — no shared memory, no staging
loads/stores per frame. This kernel implements that variant so the
trade can be measured (``benchmarks/test_ablation_register_tiling.py``):

* for 3 Gaussians in double precision, the persistent parameters cost
  9 doubles = 18 extra registers per thread, which still fits the
  63-register CC 2.0 ceiling — and beats the shared variant by
  skipping ~18 shared accesses per frame;
* for 5 Gaussians, 15 persistent doubles push the total past the
  ceiling: the compiler would spill, which the occupancy model rejects
  — shared memory becomes the *only* way to keep the group resident.
  That asymmetry justifies the paper's shared-memory design for its
  configurable-K goal.

The per-frame algorithm is exactly level F; output is bit-identical to
the shared tiled kernel.
"""

from __future__ import annotations

import numpy as np

from ..errors import LaunchError
from ..layout.base import PARAM_M, PARAM_SD, PARAM_W
from .common import (
    KernelConfig,
    load_components,
    predicated_update,
    predicated_virtual_component,
    store_components,
    store_foreground,
)


def registers_for_group_residency(cfg: KernelConfig) -> int:
    """Pinned registers/thread for the register-resident variant: the
    level-F working set plus the persistent parameter triple."""
    from ..gpusim.registers import pinned_registers

    dtype_name = "double" if cfg.dtype == np.dtype(np.float64) else "float"
    width = 2 if dtype_name == "double" else 1
    persistent = cfg.num_gaussians * 3 * width
    return pinned_registers("F", cfg.num_gaussians, dtype_name) + persistent


def make_register_tiled_kernel(layout, cfg: KernelConfig, frame_bufs, fg_bufs):
    """Build the register-resident group kernel (SoA layout).

    Launch with any block size; unlike the shared variant there is no
    tile/block coupling.
    """
    if len(frame_bufs) != len(fg_bufs):
        raise LaunchError(
            f"{len(frame_bufs)} frame buffers vs {len(fg_bufs)} foreground buffers"
        )
    if not frame_bufs:
        raise LaunchError("empty frame group")

    k_count = cfg.num_gaussians

    def mog_tiled_regs(ctx):
        pixel = ctx.thread_id()
        # Parameters live in registers for the whole group.
        w, m, sd = load_components(ctx, layout, cfg, pixel)

        for f_idx in ctx.loop(len(frame_bufs)):
            frame_buf, fg_buf = frame_bufs[f_idx], fg_bufs[f_idx]
            x = ctx.load(frame_buf, pixel).astype(cfg.dtype)

            any_match = ctx.var(False, np.bool_)
            for k in ctx.loop(k_count):
                dk = abs(x - m[k].get())
                matched = dk < sd[k] * cfg.gamma1
                matchf = matched.astype(cfg.dtype)
                predicated_update(ctx, cfg, x, w[k], m[k], sd[k], dk, matchf)
                any_match.set(any_match | matched)

            predicated_virtual_component(ctx, cfg, x, w, m, sd, None, any_match)

            background = ctx.var(False, np.bool_)
            for k in ctx.loop(k_count):
                d = abs(x - m[k].get())
                hit = (w[k] >= cfg.gamma2) & (d < sd[k] * cfg.gamma1)
                background.set(background | hit)
            store_foreground(ctx, fg_buf, pixel, background)

        store_components(ctx, layout, cfg, pixel, w, m, sd)

    return mog_tiled_regs
