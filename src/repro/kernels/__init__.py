"""Simulated CUDA kernels for every optimization level of the paper.

There is exactly *one* kernel per background-model family in this
package: the canonical per-pixel update described by
:class:`~repro.kernels.ir.KernelSpec`, whose ``model`` field selects
the family (:data:`~repro.kernels.ir.MOG_FAMILY` Stauffer-Grimson by
default, :data:`~repro.kernels.ir.DMSG_FAMILY` dual-mode single
Gaussian — see ``docs/models.md``).  The paper's levels are composable
:class:`~repro.kernels.ir.KernelPass` stacks over it (Tables II/III
are cumulative; each pass declares which families it applies to), and
:mod:`repro.kernels.build` emits the DSL program for any spec.  The
same spec drives :mod:`repro.cudagen`, so the simulator and the real
CUDA sources cannot drift apart.

===================  ===========  =====================================
factory              paper level  pass stack (over the level-A base)
===================  ===========  =====================================
make_base_kernel          A       (none) — AoS, branchy, rank+sort+break
make_coalesced_kernel     B, C    soa-layout (C adds host-side overlap)
make_nosort_kernel        D       + sort-elimination
make_predicated_kernel    E       + predication
make_regopt_kernel        F       + register-reduction
make_tiled_kernel         G       + tiling (shared-memory frame groups)
make_register_tiled_kernel  —     + register-tiling (ablation: group
                                  parameters resident in registers)
===================  ===========  =====================================

Level C uses the same kernel as B — overlapping transfers with
execution is a host-side (pipeline) change, see
:mod:`repro.core.pipeline`.  The factories below are thin wrappers kept
for direct use and the benchmarks; new call sites should prefer
``build_kernel(spec_for_level(...), ...)`` or arbitrary pass stacks via
:func:`~repro.kernels.ir.apply_passes`.
"""

from .build import (
    build_group_kernel,
    build_kernel,
    registers_for_group_residency,
    shared_bytes_for_tile,
)
from .common import KernelConfig
from .fusion import (
    CLASS_BACKGROUND,
    CLASS_FOREGROUND,
    CLASS_SHADOW,
    build_post_kernels,
)
from .ir import (
    BASE_SPEC,
    DMSG_FAMILY,
    FUSED_STAGES,
    LEVEL_PASSES,
    MODEL_FAMILIES,
    MOG_FAMILY,
    PASS_REGISTRY,
    FusionPass,
    KernelPass,
    KernelSpec,
    ModelFamily,
    PassError,
    apply_passes,
    applicable_passes,
    base_spec_for,
    canonical_fused_stages,
    resolve_model,
    spec_for_level,
)


def make_base_kernel(layout, cfg, frame_buf, fg_buf):
    """Level A: direct CUDA translation of Algorithm 1 (AoS, branchy)."""
    return build_kernel(spec_for_level("A"), layout, cfg, frame_buf, fg_buf)


def make_coalesced_kernel(layout, cfg, frame_buf, fg_buf):
    """Level B: the level-A algorithm over the SoA layout."""
    return build_kernel(spec_for_level("B"), layout, cfg, frame_buf, fg_buf)


def make_nosort_kernel(layout, cfg, frame_buf, fg_buf):
    """Level D: rank/sort and early-exit branches eliminated."""
    return build_kernel(spec_for_level("D"), layout, cfg, frame_buf, fg_buf)


def make_predicated_kernel(layout, cfg, frame_buf, fg_buf):
    """Level E: Algorithm-5 predicated updates."""
    return build_kernel(spec_for_level("E"), layout, cfg, frame_buf, fg_buf)


def make_regopt_kernel(layout, cfg, frame_buf, fg_buf):
    """Level F: no persistent diff[] array (register reduction)."""
    return build_kernel(spec_for_level("F"), layout, cfg, frame_buf, fg_buf)


def make_tiled_kernel(layout, cfg, frame_bufs, fg_bufs, tile_pixels):
    """Level G: frame groups staged through shared memory."""
    return build_group_kernel(
        spec_for_level("G"), layout, cfg, frame_bufs, fg_bufs,
        tile_pixels=tile_pixels,
    )


def make_register_tiled_kernel(layout, cfg, frame_bufs, fg_bufs):
    """Ablation: frame-group parameters resident in registers."""
    return build_group_kernel(
        apply_passes(spec_for_level("F"), ("register-tiling",)),
        layout, cfg, frame_bufs, fg_bufs,
    )


__all__ = [
    "BASE_SPEC",
    "CLASS_BACKGROUND",
    "CLASS_FOREGROUND",
    "CLASS_SHADOW",
    "FUSED_STAGES",
    "FusionPass",
    "KernelConfig",
    "KernelPass",
    "KernelSpec",
    "LEVEL_PASSES",
    "PASS_REGISTRY",
    "PassError",
    "apply_passes",
    "build_group_kernel",
    "build_kernel",
    "build_post_kernels",
    "canonical_fused_stages",
    "make_base_kernel",
    "make_coalesced_kernel",
    "make_nosort_kernel",
    "make_predicated_kernel",
    "make_regopt_kernel",
    "make_register_tiled_kernel",
    "make_tiled_kernel",
    "registers_for_group_residency",
    "shared_bytes_for_tile",
    "spec_for_level",
]
