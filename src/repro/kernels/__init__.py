"""Simulated CUDA kernels for every optimization level of the paper.

Each module holds a kernel *factory*: given a parameter layout, a
kernel configuration and the device buffers, it returns a DSL kernel
function for :meth:`repro.gpusim.engine.SimtEngine.launch`.

=======  ====================  =====================================
module   paper level           distinguishing property
=======  ====================  =====================================
mog_base        A              AoS layout, branchy, rank+sort+break
mog_coalesced   B (and C)      SoA layout, otherwise identical to A
mog_nosort      D              sort removed, flat foreground OR
mog_predicated  E              Algorithm-5 predicated updates
mog_regopt      F              no persistent diff[] array
mog_tiled       G              F staged through shared memory,
                               processing frame groups per tile
=======  ====================  =====================================

Level C uses the same kernel as B — overlapping transfers with
execution is a host-side (pipeline) change, see
:mod:`repro.core.pipeline`.
"""

from .common import KernelConfig
from .mog_base import make_base_kernel
from .mog_coalesced import make_coalesced_kernel
from .mog_nosort import make_nosort_kernel
from .mog_predicated import make_predicated_kernel
from .mog_regopt import make_regopt_kernel
from .mog_tiled import make_tiled_kernel
from .mog_tiled_registers import make_register_tiled_kernel

__all__ = [
    "KernelConfig",
    "make_base_kernel",
    "make_coalesced_kernel",
    "make_nosort_kernel",
    "make_predicated_kernel",
    "make_regopt_kernel",
    "make_tiled_kernel",
    "make_register_tiled_kernel",
]
