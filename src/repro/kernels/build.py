"""Build simulated DSL kernels from a :class:`~repro.kernels.ir.KernelSpec`.

This is the single emitter behind every optimization level: one
canonical Stauffer-Grimson kernel body whose shape is steered by the
spec's axes (update style, sort, scan, tiling).  The emitted programs
are statement-for-statement the kernels the per-level modules used to
hand-write, so masks and mixture state stay bit-identical at every
level in both float32 and float64 (the cross-tier tests are the
oracle).

Two entry points mirror the two launch structures:

* :func:`build_kernel` — one frame per launch (``tiling == "none"``);
* :func:`build_group_kernel` — one frame *group* per launch
  (``tiling`` ``"shared"`` or ``"registers"``).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, LaunchError
from ..layout.base import NUM_PARAMS, PARAM_M, PARAM_SD, PARAM_W
from .common import (
    KernelConfig,
    branchy_update_match,
    branchy_virtual_component,
    dmsg_branchy_body,
    dmsg_predicated_body,
    foreground_scan_break,
    foreground_scan_flat,
    foreground_scan_recompute,
    load_components,
    predicated_update,
    predicated_virtual_component,
    rank_and_sort,
    store_components,
    store_foreground,
)
from .fusion import check_fused_buffers, fused_tail
from .ir import KernelSpec


def shared_bytes_for_tile(tile_pixels: int, cfg: KernelConfig) -> int:
    """Shared memory one tile's Gaussian parameters occupy."""
    return tile_pixels * cfg.num_gaussians * NUM_PARAMS * cfg.dtype.itemsize


def registers_for_group_residency(cfg: KernelConfig) -> int:
    """Pinned registers/thread for the register-resident variant: the
    level-F working set plus the persistent parameter triple."""
    from ..gpusim.registers import pinned_registers

    dtype_name = "double" if cfg.dtype == np.dtype(np.float64) else "float"
    width = 2 if dtype_name == "double" else 1
    persistent = cfg.num_gaussians * 3 * width
    return pinned_registers("F", cfg.num_gaussians, dtype_name) + persistent


# ----------------------------------------------------------------------
# The canonical per-frame body, dispatched on the spec's model family
# ----------------------------------------------------------------------
def _frame_body(ctx, cfg: KernelConfig, spec: KernelSpec, x, w, m, sd):
    """One frame's per-pixel model update.  ``w``/``m``/``sd`` are the
    pixel's component registers; returns the ``background`` flag (the
    caller stores state and mask in the level's original order).

    MoG runs the match/update loop, virtual component, optional sort
    and foreground scan (steps 2-6 of :mod:`repro.mog.update`).  DMSG
    runs the dual-mode body (:mod:`repro.dmsg.vectorized` semantics);
    its classification is the pre-update background-mode test by
    definition, so the ``sort``/``scan`` axes that reshape MoG's
    decision code have nothing to act on and only the ``update`` axis
    (branchy vs predicated) changes the emitted instructions.
    """
    if spec.model.name == "dmsg":
        if spec.update == "branchy":
            return dmsg_branchy_body(ctx, cfg, x, w, m, sd)
        return dmsg_predicated_body(ctx, cfg, x, w, m, sd)
    return _frame_body_mog(ctx, cfg, spec, x, w, m, sd)


def _frame_body_mog(ctx, cfg: KernelConfig, spec: KernelSpec, x, w, m, sd):
    """Match/update loop, virtual component, optional sort, foreground
    scan (steps 2-6 of repro.mog.update)."""
    diff = [] if spec.keep_diff else None
    any_match = ctx.var(False, np.bool_)
    for k in ctx.loop(cfg.num_gaussians):
        if spec.update == "branchy":
            dk = ctx.var(abs(x - m[k].get()))
            matched = dk < sd[k] * cfg.gamma1
            with ctx.if_(matched):
                branchy_update_match(ctx, cfg, x, w[k], m[k], sd[k], dk)
                any_match.set(True)
            with ctx.else_():
                w[k].set(w[k] * cfg.alpha)
            diff.append(dk)
        elif spec.keep_diff:
            dk = ctx.var(abs(x - m[k].get()))
            matched = dk < sd[k] * cfg.gamma1
            matchf = matched.astype(cfg.dtype)
            predicated_update(ctx, cfg, x, w[k], m[k], sd[k], dk.get(), matchf)
            any_match.set(any_match | matched)
            diff.append(dk)
        else:
            # diff is a loop-local temporary, not a persistent array.
            dk = abs(x - m[k].get())
            matched = dk < sd[k] * cfg.gamma1
            matchf = matched.astype(cfg.dtype)
            predicated_update(ctx, cfg, x, w[k], m[k], sd[k], dk, matchf)
            any_match.set(any_match | matched)

    if spec.update == "branchy":
        branchy_virtual_component(ctx, cfg, x, w, m, sd, diff, any_match)
    else:
        predicated_virtual_component(ctx, cfg, x, w, m, sd, diff, any_match)

    if spec.sort:
        rank_and_sort(ctx, w, m, sd, diff)

    if spec.scan == "break":
        return foreground_scan_break(ctx, cfg, w, sd, diff)
    if spec.scan == "flat":
        return foreground_scan_flat(ctx, cfg, w, sd, diff)
    return foreground_scan_recompute(ctx, cfg, x, w, m, sd)


# ----------------------------------------------------------------------
# Per-frame kernels (levels A-F and any untiled pass subset)
# ----------------------------------------------------------------------
def build_kernel(
    spec: KernelSpec,
    layout,
    cfg: KernelConfig,
    frame_buf,
    fg_buf,
    shadow_buf=None,
    class_buf=None,
):
    """Build the one-frame-per-launch kernel ``spec`` describes.

    Fused specs (``spec.fused``) additionally write the shadow map /
    class map into ``shadow_buf`` / ``class_buf`` from the same frame
    body, with the background estimate still in registers.
    """
    spec.validate()
    if spec.group_structured:
        raise ConfigError(
            f"spec {spec.name!r} is group-structured (tiling="
            f"{spec.tiling!r}); use build_group_kernel"
        )
    check_fused_buffers(spec, shadow_buf, class_buf)

    def kernel(ctx):
        pixel = ctx.thread_id()
        x = ctx.load(frame_buf, pixel).astype(cfg.dtype)
        w, m, sd = load_components(ctx, layout, cfg, pixel)
        background = _frame_body(ctx, cfg, spec, x, w, m, sd)
        if spec.fused:
            background = fused_tail(
                ctx, cfg, spec, x, w, m, pixel, background,
                shadow_buf, class_buf,
            )
        store_components(ctx, layout, cfg, pixel, w, m, sd)
        store_foreground(ctx, fg_buf, pixel, background)

    kernel.__name__ = spec.name
    return kernel


# ----------------------------------------------------------------------
# Frame-group kernels (level G and the register-residency ablation)
# ----------------------------------------------------------------------
def _check_group(spec, frame_bufs, fg_bufs, shadow_bufs, class_bufs) -> None:
    if len(frame_bufs) != len(fg_bufs):
        raise LaunchError(
            f"{len(frame_bufs)} frame buffers vs {len(fg_bufs)} foreground buffers"
        )
    if not frame_bufs:
        raise LaunchError("empty frame group")
    for name, stage, bufs in (
        ("shadow_bufs", "shadow", shadow_bufs),
        ("class_bufs", "histogram", class_bufs),
    ):
        if stage in spec.fused:
            if bufs is None or len(bufs) != len(frame_bufs):
                raise LaunchError(
                    f"spec {spec.name!r} fuses the {stage} stage; {name} "
                    f"must match the frame group size {len(frame_bufs)}"
                )


def _group_buf(bufs, f_idx):
    return None if bufs is None else bufs[f_idx]


def build_group_kernel(
    spec: KernelSpec,
    layout,
    cfg: KernelConfig,
    frame_bufs,
    fg_bufs,
    tile_pixels: int | None = None,
    shadow_bufs=None,
    class_bufs=None,
):
    """Build the frame-group kernel ``spec`` describes.

    ``frame_bufs`` / ``fg_bufs`` are the buffers of one frame group
    (the group size is their length).  Shared tiling requires
    ``tile_pixels`` and must be launched with ``threads_per_block ==
    tile_pixels`` (each block owns one tile); the register-resident
    variant has no tile/block coupling.  Fused specs take per-frame
    ``shadow_bufs`` / ``class_bufs`` lists of the same length.
    """
    spec.validate()
    if not spec.group_structured:
        raise ConfigError(
            f"spec {spec.name!r} is per-frame (tiling='none'); use build_kernel"
        )
    _check_group(spec, frame_bufs, fg_bufs, shadow_bufs, class_bufs)
    if spec.tiling == "shared":
        if tile_pixels is None:
            raise ConfigError("shared tiling requires tile_pixels")
        return _build_shared_tiled(spec, layout, cfg, frame_bufs, fg_bufs,
                                   tile_pixels, shadow_bufs, class_bufs)
    return _build_register_tiled(spec, layout, cfg, frame_bufs, fg_bufs,
                                 shadow_bufs, class_bufs)


def _build_shared_tiled(spec, layout, cfg, frame_bufs, fg_bufs, tile_pixels,
                        shadow_bufs=None, class_bufs=None):
    """Parameters staged global -> shared once per group (paper Fig 9)."""
    k_count = cfg.num_gaussians

    def plane(k: int, param: int) -> int:
        return (k * NUM_PARAMS + param) * tile_pixels

    def kernel(ctx):
        if ctx.threads_per_block != tile_pixels:
            raise LaunchError(
                f"tiled kernel needs threads_per_block == tile_pixels "
                f"({tile_pixels}), got {ctx.threads_per_block}"
            )
        pixel = ctx.thread_id()
        lane = ctx.lane_id()
        sh = ctx.shared_alloc(
            "gaussians_tile", tile_pixels * k_count * NUM_PARAMS, cfg.dtype
        )

        # Stage this tile's parameters: global -> shared, once per group.
        for k in ctx.loop(k_count):
            for p in (PARAM_W, PARAM_M, PARAM_SD):
                v = ctx.load(layout.buffer, layout.index(ctx, k, p, pixel))
                ctx.shared_store(sh, lane + plane(k, p), v)
        ctx.syncthreads()

        # Process every frame of the group against the staged tile.
        for f_idx in ctx.loop(len(frame_bufs)):
            frame_buf, fg_buf = frame_bufs[f_idx], fg_bufs[f_idx]
            x = ctx.load(frame_buf, pixel).astype(cfg.dtype)
            w, m, sd = [], [], []
            for k in ctx.loop(k_count):
                w.append(ctx.var(ctx.shared_load(sh, lane + plane(k, PARAM_W))))
                m.append(ctx.var(ctx.shared_load(sh, lane + plane(k, PARAM_M))))
                sd.append(ctx.var(ctx.shared_load(sh, lane + plane(k, PARAM_SD))))

            background = _frame_body(ctx, cfg, spec, x, w, m, sd)
            if spec.fused:
                background = fused_tail(
                    ctx, cfg, spec, x, w, m, pixel, background,
                    _group_buf(shadow_bufs, f_idx),
                    _group_buf(class_bufs, f_idx),
                )

            for k in ctx.loop(k_count):
                ctx.shared_store(sh, lane + plane(k, PARAM_W), w[k].get())
                ctx.shared_store(sh, lane + plane(k, PARAM_M), m[k].get())
                ctx.shared_store(sh, lane + plane(k, PARAM_SD), sd[k].get())
            store_foreground(ctx, fg_buf, pixel, background)

        # Write the tile's parameters back: shared -> global, once.
        ctx.syncthreads()
        for k in ctx.loop(k_count):
            for p in (PARAM_W, PARAM_M, PARAM_SD):
                v = ctx.shared_load(sh, lane + plane(k, p))
                ctx.store(layout.buffer, layout.index(ctx, k, p, pixel), v)

    kernel.__name__ = spec.name
    return kernel


def _build_register_tiled(spec, layout, cfg, frame_bufs, fg_bufs,
                          shadow_bufs=None, class_bufs=None):
    """Parameters live in registers for the whole group (ablation)."""

    def kernel(ctx):
        pixel = ctx.thread_id()
        w, m, sd = load_components(ctx, layout, cfg, pixel)

        for f_idx in ctx.loop(len(frame_bufs)):
            frame_buf, fg_buf = frame_bufs[f_idx], fg_bufs[f_idx]
            x = ctx.load(frame_buf, pixel).astype(cfg.dtype)
            background = _frame_body(ctx, cfg, spec, x, w, m, sd)
            if spec.fused:
                background = fused_tail(
                    ctx, cfg, spec, x, w, m, pixel, background,
                    _group_buf(shadow_bufs, f_idx),
                    _group_buf(class_bufs, f_idx),
                )
            store_foreground(ctx, fg_buf, pixel, background)

        store_components(ctx, layout, cfg, pixel, w, m, sd)

    kernel.__name__ = spec.name
    return kernel
