"""Level F: register-usage reduction.

Level E keeps the per-component ``diff[]`` array live from the update
loop all the way to the foreground scan — K doubles of register
pressure per thread. This kernel recomputes ``|pixel - mean|`` at the
scan from the *updated* means instead ("arithmetic is cheaper than
occupying a register"). The freed registers raise SM occupancy
(Figure 7c). The recomputation is provably decision-equivalent under
the pinned update equations (see :mod:`repro.mog.update`, step 6 note)
— the paper's small level-F quality reading was a compiler artifact its
authors could not pin down either.
"""

from __future__ import annotations

import numpy as np

from .common import (
    KernelConfig,
    foreground_scan_recompute,
    load_components,
    predicated_update,
    predicated_virtual_component,
    store_components,
    store_foreground,
)


def make_regopt_kernel(layout, cfg: KernelConfig, frame_buf, fg_buf):
    """Build the level-F kernel (expects an SoA layout)."""

    def mog_regopt(ctx):
        pixel = ctx.thread_id()
        x = ctx.load(frame_buf, pixel).astype(cfg.dtype)

        w, m, sd = load_components(ctx, layout, cfg, pixel)
        any_match = ctx.var(False, np.bool_)
        for k in ctx.loop(cfg.num_gaussians):
            # diff is a loop-local temporary now, not a persistent array.
            dk = abs(x - m[k].get())
            matched = dk < sd[k] * cfg.gamma1
            matchf = matched.astype(cfg.dtype)
            predicated_update(ctx, cfg, x, w[k], m[k], sd[k], dk, matchf)
            any_match.set(any_match | matched)

        predicated_virtual_component(ctx, cfg, x, w, m, sd, None, any_match)
        background = foreground_scan_recompute(ctx, cfg, x, w, m, sd)

        store_components(ctx, layout, cfg, pixel, w, m, sd)
        store_foreground(ctx, fg_buf, pixel, background)

    return mog_regopt
