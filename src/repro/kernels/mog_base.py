"""Level A: the base kernel — a direct CUDA translation of Algorithm 1.

Array-of-Structures parameter layout (non-coalesced), branchy
match/update classification, branchy virtual-component creation, rank +
bubble sort, and the early-exit foreground scan. Every later level
changes exactly one of these properties; this kernel is the 13x
starting point.
"""

from __future__ import annotations

import numpy as np

from .common import (
    KernelConfig,
    branchy_update_match,
    branchy_virtual_component,
    foreground_scan_break,
    load_components,
    rank_and_sort,
    store_components,
    store_foreground,
)


def make_base_kernel(layout, cfg: KernelConfig, frame_buf, fg_buf):
    """Build the level-A kernel over the given buffers.

    ``layout`` is expected to be an :class:`~repro.layout.AoSLayout`
    (the function itself is layout-agnostic; level B is this same body
    over SoA — see :mod:`repro.kernels.mog_coalesced`).
    """

    def mog_base(ctx):
        pixel = ctx.thread_id()
        x = ctx.load(frame_buf, pixel).astype(cfg.dtype)

        w, m, sd = load_components(ctx, layout, cfg, pixel)
        diff = []
        any_match = ctx.var(False, np.bool_)
        for k in ctx.loop(cfg.num_gaussians):
            dk = ctx.var(abs(x - m[k].get()))
            matched = dk < sd[k] * cfg.gamma1
            with ctx.if_(matched):
                branchy_update_match(ctx, cfg, x, w[k], m[k], sd[k], dk)
                any_match.set(True)
            with ctx.else_():
                w[k].set(w[k] * cfg.alpha)
            diff.append(dk)

        branchy_virtual_component(ctx, cfg, x, w, m, sd, diff, any_match)
        rank_and_sort(ctx, w, m, sd, diff)
        background = foreground_scan_break(ctx, cfg, w, sd, diff)

        store_components(ctx, layout, cfg, pixel, w, m, sd)
        store_foreground(ctx, fg_buf, pixel, background)

    return mog_base
