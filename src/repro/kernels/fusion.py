"""Fused per-pixel post stages and their standalone (unfused) kernels.

The fusion pass (:class:`repro.kernels.ir.FusionPass`) welds up to
three downstream consumers onto the canonical MoG frame body:

* ``threshold`` — foreground contrast threshold against the per-pixel
  background estimate,
* ``shadow`` — grayscale Horprasert-style shadow test (brightness
  ratio against the same background estimate),
* ``histogram`` — per-pixel class write (background / shadow /
  foreground) feeding the host-side integral-histogram analytics.

All three need the background estimate and the foreground flag, which
are *already live in registers* when the frame body finishes.  Fused,
they cost a handful of arithmetic instructions and at most two extra
byte stores; unfused, each stage is a standalone kernel that re-reads
the frame, the parameter planes and the mask from global memory — the
exact traffic the paper's thesis says dominates.  The standalone
builders in this module exist as the *measured* baseline: the host
pipeline can run them as a post-kernel chain so the simulator's
transaction counters show precisely what fusion eliminates.

Bit-exactness discipline (same as :mod:`repro.kernels.common`): every
constant entering run-dtype arithmetic is materialised *in the run
dtype* (``ctx.full``), because the DSL promotes bare Python floats to
float64 and the fused tail has no ``MutVar`` rounding station to bring
the result back.  The NumPy oracle (:mod:`repro.post.analytics`)
mirrors these expressions one for one.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..layout.base import PARAM_M, PARAM_W
from .common import KernelConfig
from .ir import KernelSpec, canonical_fused_stages

__all__ = [
    "CLASS_BACKGROUND",
    "CLASS_SHADOW",
    "CLASS_FOREGROUND",
    "check_fused_buffers",
    "fused_tail",
    "build_background_estimate_kernel",
    "build_threshold_kernel",
    "build_shadow_kernel",
    "build_classify_kernel",
    "build_post_kernels",
]

#: Per-pixel class codes written by the ``histogram`` stage.
CLASS_BACKGROUND = 0
CLASS_SHADOW = 1
CLASS_FOREGROUND = 2


def check_fused_buffers(spec: KernelSpec, shadow_buf, class_buf) -> None:
    """Validate the output buffers a fused spec needs (per frame)."""
    if "shadow" in spec.fused and shadow_buf is None:
        raise ConfigError(
            f"spec {spec.name!r} fuses the shadow stage; pass shadow_buf"
        )
    if "histogram" in spec.fused and class_buf is None:
        raise ConfigError(
            f"spec {spec.name!r} fuses the histogram stage; pass class_buf"
        )


# ----------------------------------------------------------------------
# The fused tail (runs inside the MoG kernel, registers still live)
# ----------------------------------------------------------------------
def _background_estimate(ctx, cfg: KernelConfig, w, m):
    """Per-pixel background estimate from the component registers: the
    max-weight component's mean (first maximum wins, matching
    ``np.argmax`` in ``MixtureState.background_image``), clipped to
    the 8-bit pixel range.  Pure selects — no divergence."""
    best_w = ctx.var(w[0].get())
    best_m = ctx.var(m[0].get())
    for k in ctx.loop(cfg.num_gaussians - 1):
        k = k + 1
        better = w[k] > best_w
        best_w.set(ctx.select(better, w[k].get(), best_w.get()))
        best_m.set(ctx.select(better, m[k].get(), best_m.get()))
    zero = ctx.full(0.0, cfg.dtype)
    hi = ctx.full(255.0, cfg.dtype)
    return ctx.minimum(ctx.maximum(best_m.get(), zero), hi)


def fused_tail(
    ctx,
    cfg: KernelConfig,
    spec: KernelSpec,
    x,
    w,
    m,
    pixel,
    background,
    shadow_buf=None,
    class_buf=None,
):
    """Emit the fused post stages after the frame body.

    ``x`` is the pixel in the run dtype, ``w``/``m`` the *updated*
    component registers, ``background`` the frame body's decision.
    Returns the refined background flag (a :class:`MutVar`) the caller
    stores as the foreground mask.
    """
    stages = spec.fused
    bg_est = _background_estimate(ctx, cfg, w, m)
    fg = ctx.var(~background.get(), np.bool_)
    shadow = ctx.var(False, np.bool_)
    if "threshold" in stages:
        d = abs(x - bg_est)
        fg.set(fg & (d >= cfg.min_contrast))
    if "shadow" in stages:
        one = ctx.full(1.0, cfg.dtype)
        ratio = x / ctx.maximum(bg_est, one)
        sh = (
            fg
            & (ratio >= cfg.shadow_alpha_low)
            & (ratio < cfg.shadow_alpha_high)
        )
        shadow.set(sh)
        ctx.store(
            shadow_buf, pixel,
            ctx.select(shadow.get(), np.uint8(255), np.uint8(0)),
        )
        fg.set(fg & ~shadow.get())
    if "histogram" in stages:
        cls = ctx.select(
            fg.get(),
            np.uint8(CLASS_FOREGROUND),
            ctx.select(
                shadow.get(), np.uint8(CLASS_SHADOW),
                np.uint8(CLASS_BACKGROUND),
            ),
        )
        ctx.store(class_buf, pixel, cls)
    return ctx.var(~fg.get(), np.bool_)


# ----------------------------------------------------------------------
# Standalone post kernels (the measured unfused baseline)
# ----------------------------------------------------------------------
def build_background_estimate_kernel(layout, cfg: KernelConfig, bg_buf):
    """Re-derive the background estimate the fused tail gets for free:
    re-reads the w/m planes the MoG kernel just wrote back."""

    def kernel(ctx):
        pixel = ctx.thread_id()
        best_w = ctx.var(
            ctx.load(layout.buffer, layout.index(ctx, 0, PARAM_W, pixel))
        )
        best_m = ctx.var(
            ctx.load(layout.buffer, layout.index(ctx, 0, PARAM_M, pixel))
        )
        for k in ctx.loop(cfg.num_gaussians - 1):
            k = k + 1
            wk = ctx.load(layout.buffer, layout.index(ctx, k, PARAM_W, pixel))
            mk = ctx.load(layout.buffer, layout.index(ctx, k, PARAM_M, pixel))
            better = wk > best_w
            best_w.set(ctx.select(better, wk, best_w.get()))
            best_m.set(ctx.select(better, mk, best_m.get()))
        zero = ctx.full(0.0, cfg.dtype)
        hi = ctx.full(255.0, cfg.dtype)
        ctx.store(
            bg_buf, pixel, ctx.minimum(ctx.maximum(best_m.get(), zero), hi)
        )

    kernel.__name__ = "post_background_estimate"
    return kernel


def _load_flag(ctx, buf, pixel):
    """Load a 0/255 byte buffer as a boolean vector."""
    return ctx.load(buf, pixel).ne(np.uint8(0))


def build_threshold_kernel(cfg: KernelConfig, frame_buf, bg_buf, fg_buf):
    """Contrast-threshold the mask: re-reads frame, estimate and mask."""

    def kernel(ctx):
        pixel = ctx.thread_id()
        x = ctx.load(frame_buf, pixel).astype(cfg.dtype)
        bg_est = ctx.load(bg_buf, pixel)
        fg = _load_flag(ctx, fg_buf, pixel)
        d = abs(x - bg_est)
        keep = fg & (d >= cfg.min_contrast)
        ctx.store(
            fg_buf, pixel, ctx.select(keep, np.uint8(255), np.uint8(0))
        )

    kernel.__name__ = "post_threshold"
    return kernel


def build_shadow_kernel(
    cfg: KernelConfig, frame_buf, bg_buf, fg_buf, shadow_buf
):
    """Shadow test: re-reads frame, estimate and mask; writes both the
    shadow map and the shadow-suppressed mask."""

    def kernel(ctx):
        pixel = ctx.thread_id()
        x = ctx.load(frame_buf, pixel).astype(cfg.dtype)
        bg_est = ctx.load(bg_buf, pixel)
        fg = _load_flag(ctx, fg_buf, pixel)
        one = ctx.full(1.0, cfg.dtype)
        ratio = x / ctx.maximum(bg_est, one)
        sh = (
            fg
            & (ratio >= cfg.shadow_alpha_low)
            & (ratio < cfg.shadow_alpha_high)
        )
        ctx.store(shadow_buf, pixel, ctx.select(sh, np.uint8(255), np.uint8(0)))
        ctx.store(
            fg_buf, pixel, ctx.select(fg & ~sh, np.uint8(255), np.uint8(0))
        )

    kernel.__name__ = "post_shadow"
    return kernel


def build_classify_kernel(cfg: KernelConfig, fg_buf, shadow_buf, class_buf):
    """Class write: re-reads the mask (and shadow map if present)."""

    def kernel(ctx):
        pixel = ctx.thread_id()
        fg = _load_flag(ctx, fg_buf, pixel)
        if shadow_buf is not None:
            sh = _load_flag(ctx, shadow_buf, pixel)
        else:
            sh = ctx.full(False, np.bool_)
        cls = ctx.select(
            fg,
            np.uint8(CLASS_FOREGROUND),
            ctx.select(
                sh, np.uint8(CLASS_SHADOW), np.uint8(CLASS_BACKGROUND)
            ),
        )
        ctx.store(class_buf, pixel, cls)

    kernel.__name__ = "post_classify"
    return kernel


def build_post_kernels(stages, layout, cfg: KernelConfig, frame_buf, fg_buf, alloc):
    """Assemble the unfused post-kernel chain for ``stages``.

    ``alloc(name, dtype)`` allocates one per-pixel device buffer.
    Returns ``(kernels, buffers)`` where ``buffers`` maps ``"bg_est"``
    / ``"shadow"`` / ``"classes"`` to the allocated device buffers.
    """
    stages = canonical_fused_stages(stages)
    if not stages:
        raise ConfigError("empty post-stage selection")
    kernels = []
    bufs: dict = {}
    if "threshold" in stages or "shadow" in stages:
        bufs["bg_est"] = alloc("post_bg_est", cfg.dtype)
        kernels.append(
            build_background_estimate_kernel(layout, cfg, bufs["bg_est"])
        )
    if "threshold" in stages:
        kernels.append(
            build_threshold_kernel(cfg, frame_buf, bufs["bg_est"], fg_buf)
        )
    if "shadow" in stages:
        bufs["shadow"] = alloc("shadow_out", np.uint8)
        kernels.append(
            build_shadow_kernel(
                cfg, frame_buf, bufs["bg_est"], fg_buf, bufs["shadow"]
            )
        )
    if "histogram" in stages:
        bufs["classes"] = alloc("class_out", np.uint8)
        kernels.append(
            build_classify_kernel(
                cfg, fg_buf, bufs.get("shadow"), bufs["classes"]
            )
        )
    return kernels, bufs
