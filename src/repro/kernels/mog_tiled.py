"""Level G: tiled / windowed MoG with shared-memory parameter staging.

The Gaussian parameters of a whole frame (149 MB at full HD) dwarf the
48 KB of SM shared memory, and within one frame each parameter is used
exactly once — so shared memory only pays off if parameters are *reused*.
This kernel creates that reuse by splitting the frame into tiles sized
to fit shared memory (640 pixels x K x 3 doubles = 45 KB) and processing
each tile across a *group* of consecutive frames before moving on
(Figure 9): parameters travel global -> shared once per group instead of
once per frame, dividing their DRAM traffic by the group size.

The per-frame algorithm is exactly level F. The cost is occupancy —
one 640-thread block with 45 KB of shared memory is all an SM can hold
(20/48 warps = 42%) — and added latency: no frame of a group finishes
before the whole group is processed.
"""

from __future__ import annotations

import numpy as np

from ..errors import LaunchError
from ..layout.base import NUM_PARAMS, PARAM_M, PARAM_SD, PARAM_W
from .common import (
    KernelConfig,
    predicated_update,
    predicated_virtual_component,
    store_foreground,
)


def shared_bytes_for_tile(tile_pixels: int, cfg: KernelConfig) -> int:
    """Shared memory one tile's Gaussian parameters occupy."""
    return tile_pixels * cfg.num_gaussians * NUM_PARAMS * cfg.dtype.itemsize


def make_tiled_kernel(layout, cfg: KernelConfig, frame_bufs, fg_bufs, tile_pixels: int):
    """Build the level-G kernel.

    ``frame_bufs`` / ``fg_bufs`` are the buffers of one frame group
    (the group size is their length). The kernel must be launched with
    ``threads_per_block == tile_pixels``; each block owns one tile.
    """
    if len(frame_bufs) != len(fg_bufs):
        raise LaunchError(
            f"{len(frame_bufs)} frame buffers vs {len(fg_bufs)} foreground buffers"
        )
    if not frame_bufs:
        raise LaunchError("empty frame group")

    k_count = cfg.num_gaussians

    def plane(k: int, param: int) -> int:
        return (k * NUM_PARAMS + param) * tile_pixels

    def mog_tiled(ctx):
        if ctx.threads_per_block != tile_pixels:
            raise LaunchError(
                f"tiled kernel needs threads_per_block == tile_pixels "
                f"({tile_pixels}), got {ctx.threads_per_block}"
            )
        pixel = ctx.thread_id()
        lane = ctx.lane_id()
        sh = ctx.shared_alloc(
            "gaussians_tile", tile_pixels * k_count * NUM_PARAMS, cfg.dtype
        )

        # Stage this tile's parameters: global -> shared, once per group.
        for k in ctx.loop(k_count):
            for p in (PARAM_W, PARAM_M, PARAM_SD):
                v = ctx.load(layout.buffer, layout.index(ctx, k, p, pixel))
                ctx.shared_store(sh, lane + plane(k, p), v)
        ctx.syncthreads()

        # Process every frame of the group against the staged tile.
        for f_idx in ctx.loop(len(frame_bufs)):
            frame_buf, fg_buf = frame_bufs[f_idx], fg_bufs[f_idx]
            x = ctx.load(frame_buf, pixel).astype(cfg.dtype)
            w, m, sd = [], [], []
            for k in ctx.loop(k_count):
                w.append(ctx.var(ctx.shared_load(sh, lane + plane(k, PARAM_W))))
                m.append(ctx.var(ctx.shared_load(sh, lane + plane(k, PARAM_M))))
                sd.append(ctx.var(ctx.shared_load(sh, lane + plane(k, PARAM_SD))))

            any_match = ctx.var(False, np.bool_)
            for k in ctx.loop(k_count):
                dk = abs(x - m[k].get())
                matched = dk < sd[k] * cfg.gamma1
                matchf = matched.astype(cfg.dtype)
                predicated_update(ctx, cfg, x, w[k], m[k], sd[k], dk, matchf)
                any_match.set(any_match | matched)

            predicated_virtual_component(ctx, cfg, x, w, m, sd, None, any_match)

            background = ctx.var(False, np.bool_)
            for k in ctx.loop(k_count):
                d = abs(x - m[k].get())
                hit = (w[k] >= cfg.gamma2) & (d < sd[k] * cfg.gamma1)
                background.set(background | hit)

            for k in ctx.loop(k_count):
                ctx.shared_store(sh, lane + plane(k, PARAM_W), w[k].get())
                ctx.shared_store(sh, lane + plane(k, PARAM_M), m[k].get())
                ctx.shared_store(sh, lane + plane(k, PARAM_SD), sd[k].get())
            store_foreground(ctx, fg_buf, pixel, background)

        # Write the tile's parameters back: shared -> global, once.
        ctx.syncthreads()
        for k in ctx.loop(k_count):
            for p in (PARAM_W, PARAM_M, PARAM_SD):
                v = ctx.shared_load(sh, lane + plane(k, p))
                ctx.store(layout.buffer, layout.index(ctx, k, p, pixel), v)

    return mog_tiled
