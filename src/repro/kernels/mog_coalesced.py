"""Level B: memory coalescing — the level-A algorithm over SoA layout.

The kernel body is byte-for-byte the algorithm of level A; the only
change is the data layout behind ``layout.index``, turning every
72-byte-stride warp request (18 transactions) into a contiguous one
(2 transactions for doubles). Level C launches this same kernel and
overlaps its transfers host-side.
"""

from __future__ import annotations

from .common import KernelConfig
from .mog_base import make_base_kernel


def make_coalesced_kernel(layout, cfg: KernelConfig, frame_buf, fg_buf):
    """Build the level-B kernel (expects an SoA layout)."""
    kernel = make_base_kernel(layout, cfg, frame_buf, fg_buf)
    kernel.__name__ = "mog_coalesced"
    return kernel
