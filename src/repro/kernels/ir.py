"""Kernel IR: one canonical kernel spec + composable passes.

The paper's levels A..G are *cumulative transformations* of a single
per-pixel background-subtraction kernel (Tables II/III).  This module
makes that structure explicit instead of encoding it as near-duplicate
kernel modules: a declarative :class:`KernelSpec` describes the
canonical kernel along the axes the paper varies, and each optimization
is a :class:`KernelPass` — a *pure* ``KernelSpec -> KernelSpec``
transform with a name, the paper level it realizes, and a cost/benefit
note.

The background model itself is an IR axis too: :class:`ModelFamily`
describes a per-pixel model (state schema, match/update semantics,
classify rule) and every spec carries one as ``spec.model``.  Two
families are registered:

* ``"mog"`` — the paper's Stauffer-Grimson mixture of Gaussians
  (K weighted components per pixel; the default, so every pre-existing
  caller is unchanged);
* ``"dmsg"`` — the dual-mode single Gaussian (one running mean/variance
  background mode plus an age-gated candidate mode that swaps in on
  scene change) — far cheaper per pixel, the serving tier's low-cost
  degrade target.

Three independent backends consume the same spec:

* :mod:`repro.kernels.build` emits the simulated-GPU DSL kernel;
* :mod:`repro.cudagen` renders real CUDA C source;
* :mod:`repro.kernels.jit` renders numba-compilable Python source.

Because the spec is data, pass subsets the paper never measured (e.g.
``A + predication`` without sort elimination) are one
:func:`apply_passes` call away — see
:func:`repro.core.variants.custom_level` — and so are cross-family
stacks like ``dmsg:A+predication``.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

from ..errors import ConfigError

#: Legal values of the spec axes.
LAYOUTS = ("aos", "soa")
UPDATES = ("branchy", "predicated")
SCANS = ("break", "flat", "recompute")
TILINGS = ("none", "shared", "registers")

#: Downstream per-pixel stages the fusion pass can weld onto the frame
#: body, in canonical dataflow order: the foreground threshold needs
#: the background estimate, the shadow test refines the thresholded
#: mask, and the class write consumes both.
FUSED_STAGES = ("threshold", "shadow", "histogram")


def canonical_fused_stages(stages) -> tuple[str, ...]:
    """Normalise a fused-stage selection to canonical dataflow order."""
    seq = tuple(str(s) for s in stages)
    unknown = sorted(set(seq) - set(FUSED_STAGES))
    if unknown:
        raise ConfigError(
            f"unknown fused stage(s) {unknown}; expected a subset of "
            f"{FUSED_STAGES}"
        )
    if len(set(seq)) != len(seq):
        raise ConfigError(f"duplicate fused stages in {seq}")
    return tuple(s for s in FUSED_STAGES if s in seq)


class PassError(ConfigError):
    """A pass was applied to a spec that does not satisfy its
    prerequisites (e.g. register reduction before predication)."""


# ----------------------------------------------------------------------
# Model families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ModelFamily:
    """One per-pixel background-model family the kernel IR can emit.

    A family fixes what the three per-pixel state planes *mean*, how a
    pixel is matched against and folded into the model, and how the
    foreground decision is made.  The optimization passes are layout /
    control-flow / residency transforms and are (mostly) orthogonal to
    the family; each :class:`KernelPass` declares which families it
    applies to.

    Attributes
    ----------
    name:
        Registry key, CLI spelling and kernel-name prefix
        (``{name}_coalesced`` …).
    title:
        Human-readable family name.
    state_planes:
        Semantic role of the three ``(K, N)`` per-pixel state planes.
        Both families use the same physical triple (so layouts,
        checkpoints and the jit kernel signature are shared); only the
        interpretation differs.
    num_components:
        Fixed per-pixel component count, or ``None`` to use
        ``params.num_gaussians`` (the MoG case).
    supports_sort:
        Whether rank/sort semantics exist for this family (MoG's
        ``w/sd`` rank; DMSG has nothing to sort).
    match_rule, update_rule, classify_rule:
        One-line semantics, shown by ``repro levels`` and the docs.
    """

    name: str
    title: str
    state_planes: tuple[str, str, str]
    num_components: int | None
    supports_sort: bool
    match_rule: str
    update_rule: str
    classify_rule: str

    def component_count(self, params) -> int:
        """Per-pixel components for ``params`` (a
        :class:`~repro.config.MoGParams`)."""
        if self.num_components is not None:
            return self.num_components
        return params.num_gaussians

    def default_params(self):
        """Family-tuned default :class:`~repro.config.MoGParams`."""
        from ..config import MoGParams

        if self.name == "dmsg":
            # DMSG adapts via its age-based learning rate; the shared
            # learning_rate field is unused.  A slightly tighter match
            # band suits the single-mode model.
            return MoGParams()
        return MoGParams()


MOG_FAMILY = ModelFamily(
    name="mog",
    title="mixture of Gaussians (Stauffer-Grimson)",
    state_planes=("weight", "mean", "sd"),
    num_components=None,
    supports_sort=True,
    match_rule="|x - mean_k| < gamma1 * sd_k for any component k",
    update_rule=(
        "matched components blend toward x with rho = min(oma/w, 1); "
        "all weights decay by alpha; a total miss replaces the "
        "weakest component"
    ),
    classify_rule=(
        "background iff any component with w >= gamma2 matches "
        "(OR over k)"
    ),
)

DMSG_FAMILY = ModelFamily(
    name="dmsg",
    title="dual-mode single Gaussian",
    state_planes=("age", "mean", "sd"),
    num_components=2,
    supports_sort=False,
    match_rule="|x - mean_bg| < gamma1 * sd_bg against the background mode",
    update_rule=(
        "the matched mode blends with the age-based rate rho = "
        "1/min(age+1, age_cap); a background miss feeds (or resets) the "
        "candidate mode, which swaps in once its age exceeds the "
        "background's (scene-change adaptation)"
    ),
    classify_rule="foreground iff the pixel missed the background mode",
)

#: Registered model families by name.
MODEL_FAMILIES: dict[str, ModelFamily] = {
    f.name: f for f in (MOG_FAMILY, DMSG_FAMILY)
}


def resolve_model(model) -> ModelFamily:
    """Normalise a family designator (name or instance) to a
    :class:`ModelFamily`."""
    if isinstance(model, ModelFamily):
        return model
    key = str(model).strip().lower()
    try:
        return MODEL_FAMILIES[key]
    except KeyError:
        raise ConfigError(
            f"unknown model family {model!r}; expected one of "
            f"{sorted(MODEL_FAMILIES)}"
        ) from None


@dataclass(frozen=True)
class KernelSpec:
    """Declarative description of one background-subtraction kernel
    variant.

    The per-pixel semantics come from ``model`` (a
    :class:`ModelFamily`); the remaining fields are the axes along
    which the paper's optimization levels differ.

    Attributes
    ----------
    name:
        Kernel symbol name (also the simulated kernel's ``__name__``).
        Passes derive new names from ``model.name``, so family-neutral
        code never sees a hard-coded ``mog_*`` prefix.
    model:
        The background-model family (default: MoG, so existing callers
        and serialized level expressions are unchanged).
    layout:
        Per-pixel parameter memory layout: ``"aos"`` (level A) or
        ``"soa"`` (coalesced, level B+).
    update:
        Match/update style: ``"branchy"`` (Algorithm 4, levels A-D) or
        ``"predicated"`` (Algorithm 5, levels E+).
    sort:
        Whether the rank + stable bubble sort runs (levels A-C).
        Only meaningful for families with ``supports_sort``.
    scan:
        Foreground decision: ``"break"`` (early-exit Algorithm 2),
        ``"flat"`` (unconditional Algorithm 3) or ``"recompute"``
        (flat scan with ``|x - mean|`` recomputed from the updated
        means instead of a live ``diff[]`` array — level F).
    overlapped:
        Host pipeline overlaps DMA with kernel execution (level C).
        Purely host-side; does not change the kernel body.
    tiling:
        Frame-group parameter residency: ``"none"`` (one frame per
        launch), ``"shared"`` (parameters staged through shared memory
        per tile, level G) or ``"registers"`` (parameters pinned in
        registers across the group — the design-space ablation the
        paper did not explore).
    fused:
        Downstream per-pixel stages welded onto the frame body by the
        fusion pass (a subset of :data:`FUSED_STAGES` in canonical
        order). Each fused stage consumes the background estimate and
        mask *while they are still live in registers*, eliminating the
        full-frame global-memory round trip a standalone post kernel
        would pay.
    """

    name: str = "mog_base"
    model: ModelFamily = MOG_FAMILY
    layout: str = "aos"
    update: str = "branchy"
    sort: bool = True
    scan: str = "break"
    overlapped: bool = False
    tiling: str = "none"
    fused: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @property
    def keep_diff(self) -> bool:
        """Whether the per-component ``diff[]`` array stays live from
        the update loop to the foreground scan."""
        return self.scan != "recompute"

    @property
    def group_structured(self) -> bool:
        """Whether the kernel processes frame *groups* per launch."""
        return self.tiling != "none"

    # ------------------------------------------------------------------
    def validate(self) -> "KernelSpec":
        """Check internal consistency; returns ``self`` for chaining."""
        if not isinstance(self.model, ModelFamily):
            raise ConfigError(
                f"model must be a ModelFamily, got {self.model!r} "
                "(use resolve_model)"
            )
        if self.layout not in LAYOUTS:
            raise ConfigError(f"layout must be one of {LAYOUTS}, got {self.layout!r}")
        if self.update not in UPDATES:
            raise ConfigError(f"update must be one of {UPDATES}, got {self.update!r}")
        if self.scan not in SCANS:
            raise ConfigError(f"scan must be one of {SCANS}, got {self.scan!r}")
        if self.tiling not in TILINGS:
            raise ConfigError(f"tiling must be one of {TILINGS}, got {self.tiling!r}")
        if self.sort and not self.model.supports_sort:
            raise ConfigError(
                f"model family {self.model.name!r} has no rank/sort "
                "semantics; sort=True is invalid"
            )
        if self.model.supports_sort and self.sort != (self.scan == "break"):
            raise ConfigError(
                "rank/sort exists only to serve the early-exit scan: "
                f"sort={self.sort} is inconsistent with scan={self.scan!r}"
            )
        if self.scan == "recompute" and self.update != "predicated":
            raise ConfigError(
                "the recompute scan drops the diff[] array, which the "
                "branchy update's virtual component still writes; apply "
                "predication before register reduction"
            )
        if self.tiling != "none":
            if self.layout != "soa":
                raise ConfigError("tiled kernels require the SoA layout")
            if self.scan != "recompute":
                raise ConfigError(
                    "tiled kernels stage only the parameter triple, not "
                    "diff[]; apply register reduction before tiling"
                )
        if tuple(self.fused) != canonical_fused_stages(self.fused):
            raise ConfigError(
                f"fused stages {self.fused} must be a subset of "
                f"{FUSED_STAGES} in canonical order"
            )
        return self

    def replace(self, **changes) -> "KernelSpec":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes).validate()


#: The canonical level-A MoG kernel every default pass stack starts
#: from (kept for the many existing callers; family-aware code should
#: use :func:`base_spec_for`).
BASE_SPEC = KernelSpec()


def base_spec_for(model) -> KernelSpec:
    """The canonical level-A base spec of one model family.

    MoG starts from the paper's sorted early-exit kernel; DMSG has no
    rank/sort, so its base is an unsorted flat-scan kernel (the
    equivalent control-flow shape after the family's semantics are
    substituted).
    """
    fam = resolve_model(model)
    if fam.supports_sort:
        return KernelSpec(name=f"{fam.name}_base", model=fam)
    return KernelSpec(
        name=f"{fam.name}_base", model=fam, sort=False, scan="flat"
    )


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
class KernelPass:
    """A named, pure ``KernelSpec -> KernelSpec`` transform.

    Class attributes describe the pass; :meth:`apply` performs it.
    Calling the pass validates the result, so an ill-ordered stack
    fails loudly instead of emitting a silently wrong kernel.

    ``families`` declares which model families the pass applies to.
    Applying a pass to a spec of a family it does not cover is a
    **no-op with a warning** (not an error): cumulative level stacks
    like ``dmsg:F`` fold over the full paper stack, and a family
    simply skips the transforms that have no meaning for it.
    """

    #: Registry name (also the CLI spelling).
    name: str = ""
    #: Paper level this pass realizes, or ``None`` for ablation passes.
    level: str | None = None
    #: The cumulative-optimizations keyword it contributes
    #: (``LevelSpec.enables``).
    enables: str = ""
    #: Row title in the paper's Table II/III, or ``None``.
    table: str | None = None
    #: One-line cost/benefit note (shown by ``repro levels``).
    note: str = ""
    #: Model families the pass applies to (all registered ones unless
    #: narrowed by the subclass).
    families: tuple[str, ...] = ("mog", "dmsg")

    def __call__(self, spec: KernelSpec) -> KernelSpec:
        if spec.model.name not in self.families:
            warnings.warn(
                f"kernel pass {self.name!r} does not apply to model "
                f"family {spec.model.name!r}; skipping (no-op)",
                RuntimeWarning,
                stacklevel=2,
            )
            return spec
        return self.apply(spec).validate()

    def apply(self, spec: KernelSpec) -> KernelSpec:
        raise NotImplementedError

    def _require(self, cond: bool, spec: KernelSpec, why: str) -> None:
        if not cond:
            raise PassError(
                f"pass {self.name!r} cannot apply to {spec.name!r}: {why}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelPass {self.name}>"


class SoALayoutPass(KernelPass):
    name = "soa-layout"
    level = "B"
    enables = "coalescing"
    table = "Memory Coalescing"
    note = ("structure-of-arrays parameters: each warp request becomes "
            "contiguous (18 -> 2 transactions/warp for doubles)")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.layout == "aos", spec, "layout is already SoA")
        return spec.replace(layout="soa", name=f"{spec.model.name}_coalesced")


class TransferOverlapPass(KernelPass):
    name = "overlap"
    level = "C"
    enables = "overlap"
    table = "Overlapped Execution"
    note = ("host-side double buffering overlaps frame DMA with kernel "
            "execution (paper Fig 5b); the kernel body is unchanged")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(not spec.overlapped, spec, "overlap is already enabled")
        return spec.replace(overlapped=True)


class SortEliminationPass(KernelPass):
    name = "sort-elimination"
    level = "D"
    enables = "no-sort"
    table = "Branch Reduction"
    note = ("the foreground OR is order-independent on a GPU: drop rank, "
            "bubble sort and the early-exit branches (pure divergence)")
    #: MoG-only: DMSG has no rank/sort to eliminate (its base spec is
    #: already unsorted), so on DMSG this pass is a no-op with warning.
    families = ("mog",)

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.sort, spec, "the sort was already eliminated")
        return spec.replace(
            sort=False, scan="flat", name=f"{spec.model.name}_nosort"
        )


class PredicationPass(KernelPass):
    name = "predication"
    level = "E"
    enables = "predication"
    table = "Predicated Execution"
    note = ("blend updates with the 0/1 match predicate (Algorithm 5): "
            "every lane runs the same instructions, branch efficiency "
            "~99.5%, at the cost of computing unused update values")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.update == "branchy", spec,
                      "updates are already predicated")
        return spec.replace(
            update="predicated", name=f"{spec.model.name}_predicated"
        )


class RegisterReductionPass(KernelPass):
    name = "register-reduction"
    level = "F"
    enables = "register-reduction"
    table = "Register Reduction"
    note = ("recompute |x - mean| at the scan instead of keeping diff[] "
            "live: arithmetic is cheaper than occupying a register; the "
            "freed registers raise occupancy (paper Fig 7c)")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.update == "predicated", spec,
                      "register reduction builds on the predicated update")
        self._require(spec.scan == "flat", spec,
                      "register reduction replaces the flat stored-diff scan")
        return spec.replace(
            scan="recompute", name=f"{spec.model.name}_regopt"
        )


class TilingPass(KernelPass):
    name = "tiling"
    level = "G"
    enables = "tiling"
    table = None
    note = ("stage each tile's parameters in shared memory and process a "
            "frame group per launch: parameter DRAM traffic divided by "
            "the group size, at the cost of occupancy and group latency")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.tiling == "none", spec, "tiling already applied")
        return spec.replace(tiling="shared", name=f"{spec.model.name}_tiled")


class RegisterTilingPass(KernelPass):
    name = "register-tiling"
    level = None
    enables = "register-tiling"
    table = None
    note = ("ablation: keep the group's parameters in registers instead "
            "of shared memory — faster at 3 Gaussians, impossible at 5 "
            "(register ceiling), which justifies the paper's design")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.tiling == "none", spec, "tiling already applied")
        return spec.replace(
            tiling="registers", name=f"{spec.model.name}_tiled_regs"
        )


class FusionPass(KernelPass):
    name = "fusion"
    level = None
    enables = "fusion"
    table = None
    note = ("weld the per-pixel consumers (foreground threshold, shadow "
            "test, class-histogram write) onto the frame body: each "
            "fused stage drops one full-frame global read+write")

    def __init__(self, stages=FUSED_STAGES) -> None:
        #: The stages to fuse; the registry instance fuses all of them,
        #: ablation sweeps construct instances with subsets.
        self.stages = canonical_fused_stages(stages)

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(not spec.fused, spec, "fusion already applied")
        self._require(bool(self.stages), spec, "no stages to fuse")
        return spec.replace(fused=self.stages, name=spec.name + "_fused")


#: All passes in canonical (paper) application order.
PASS_REGISTRY: dict[str, KernelPass] = {
    p.name: p
    for p in (
        SoALayoutPass(),
        TransferOverlapPass(),
        SortEliminationPass(),
        PredicationPass(),
        RegisterReductionPass(),
        TilingPass(),
        RegisterTilingPass(),
        FusionPass(),
    )
}

#: Pass stacks realizing the paper's levels (A is the empty stack).
LEVEL_PASSES: dict[str, tuple[str, ...]] = {
    "A": (),
    "B": ("soa-layout",),
    "C": ("soa-layout", "overlap"),
    "D": ("soa-layout", "overlap", "sort-elimination"),
    "E": ("soa-layout", "overlap", "sort-elimination", "predication"),
    "F": ("soa-layout", "overlap", "sort-elimination", "predication",
          "register-reduction"),
    "G": ("soa-layout", "overlap", "sort-elimination", "predication",
          "register-reduction", "tiling"),
}


def resolve_pass(p: str | KernelPass) -> KernelPass:
    """Look up a pass by name (pass instances pass through)."""
    if isinstance(p, KernelPass):
        return p
    try:
        return PASS_REGISTRY[p]
    except KeyError:
        raise PassError(
            f"unknown kernel pass {p!r}; expected one of "
            f"{sorted(PASS_REGISTRY)}"
        ) from None


def applicable_passes(
    passes, model
) -> tuple[str, ...]:
    """Filter a pass-name stack down to the passes that apply to
    ``model`` (level registries use this to build family-accurate
    descriptions without triggering the no-op warning)."""
    fam = resolve_model(model)
    return tuple(
        p for p in passes if fam.name in resolve_pass(p).families
    )


def apply_passes(
    spec: KernelSpec, passes: tuple[str | KernelPass, ...] | list
) -> KernelSpec:
    """Fold a pass stack over ``spec`` (each pass validates its output)."""
    spec.validate()
    for p in passes:
        spec = resolve_pass(p)(spec)
    return spec


def spec_for_level(letter: str, model=MOG_FAMILY) -> KernelSpec:
    """The canonical spec of one paper level, built from its pass stack.

    ``model`` selects the family; the default is MoG so every existing
    caller keeps its behavior (the pre-family signature
    ``spec_for_level(letter)`` is the compatibility shim — new code
    should pass the family explicitly).  Passes that do not apply to
    the family are skipped silently (they are cumulative-stack
    definitions, not explicit requests).
    """
    fam = resolve_model(model)
    key = str(letter).strip().upper()
    if key not in LEVEL_PASSES:
        raise ConfigError(
            f"unknown optimization level {letter!r}; expected one of "
            f"{sorted(LEVEL_PASSES)}"
        )
    stack = applicable_passes(LEVEL_PASSES[key], fam)
    return apply_passes(base_spec_for(fam), stack)


# ----------------------------------------------------------------------
# Derived metadata
# ----------------------------------------------------------------------
def oracle_variant_for(spec: KernelSpec) -> str:
    """The functionally equivalent vectorized-oracle variant (the CPU
    backend and the kernels' bit-exactness oracle).

    MoG maps to a :mod:`repro.mog.vectorized` variant; DMSG's branchy
    and predicated forms are state-identical by construction, so the
    single :mod:`repro.dmsg.vectorized` implementation (``"dual"``)
    covers every DMSG spec.
    """
    if spec.model.name == "dmsg":
        return "dual"
    if spec.scan == "recompute":
        return "regopt"
    if spec.sort:
        return "sorted"
    return "nosort" if spec.update == "branchy" else "predicated"


def mog_variant_for(spec: KernelSpec) -> str:
    """Deprecated alias of :func:`oracle_variant_for` (predates model
    families; kept for existing callers)."""
    return oracle_variant_for(spec)


def register_model_for(spec: KernelSpec) -> str:
    """The :func:`repro.gpusim.registers.pinned_registers` level whose
    register model fits this spec (exact for the paper levels; the
    closest cumulative level for custom pass subsets)."""
    if spec.tiling != "none":
        return "G"
    if spec.scan == "recompute":
        return "F"
    if spec.update == "predicated":
        return "E"
    if not spec.sort and spec.model.supports_sort:
        return "D"
    if spec.layout == "soa":
        return "C" if spec.overlapped else "B"
    return "A"
