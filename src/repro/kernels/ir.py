"""Kernel IR: one canonical MoG kernel spec + composable passes.

The paper's levels A..G are *cumulative transformations* of a single
Stauffer-Grimson update kernel (Tables II/III).  This module makes that
structure explicit instead of encoding it as near-duplicate kernel
modules: a declarative :class:`KernelSpec` describes the canonical
kernel (match -> rank/sort -> update -> mask) along the axes the paper
varies, and each optimization is a :class:`KernelPass` — a *pure*
``KernelSpec -> KernelSpec`` transform with a name, the paper level it
realizes, and a cost/benefit note.

Two independent backends consume the same spec:

* :mod:`repro.kernels.build` emits the simulated-GPU DSL kernel;
* :mod:`repro.cudagen` renders real CUDA C source.

Because the spec is data, pass subsets the paper never measured (e.g.
``A + predication`` without sort elimination) are one
:func:`apply_passes` call away — see
:func:`repro.core.variants.custom_level`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import ConfigError

#: Legal values of the spec axes.
LAYOUTS = ("aos", "soa")
UPDATES = ("branchy", "predicated")
SCANS = ("break", "flat", "recompute")
TILINGS = ("none", "shared", "registers")

#: Downstream per-pixel stages the fusion pass can weld onto the frame
#: body, in canonical dataflow order: the foreground threshold needs
#: the background estimate, the shadow test refines the thresholded
#: mask, and the class write consumes both.
FUSED_STAGES = ("threshold", "shadow", "histogram")


def canonical_fused_stages(stages) -> tuple[str, ...]:
    """Normalise a fused-stage selection to canonical dataflow order."""
    seq = tuple(str(s) for s in stages)
    unknown = sorted(set(seq) - set(FUSED_STAGES))
    if unknown:
        raise ConfigError(
            f"unknown fused stage(s) {unknown}; expected a subset of "
            f"{FUSED_STAGES}"
        )
    if len(set(seq)) != len(seq):
        raise ConfigError(f"duplicate fused stages in {seq}")
    return tuple(s for s in FUSED_STAGES if s in seq)


class PassError(ConfigError):
    """A pass was applied to a spec that does not satisfy its
    prerequisites (e.g. register reduction before predication)."""


@dataclass(frozen=True)
class KernelSpec:
    """Declarative description of one MoG kernel variant.

    The canonical Stauffer-Grimson update is fixed; the fields are the
    axes along which the paper's optimization levels differ.

    Attributes
    ----------
    name:
        Kernel symbol name (also the simulated kernel's ``__name__``).
    layout:
        Gaussian-parameter memory layout: ``"aos"`` (level A) or
        ``"soa"`` (coalesced, level B+).
    update:
        Per-component match/update style: ``"branchy"`` (Algorithm 4,
        levels A-D) or ``"predicated"`` (Algorithm 5, levels E+).
    sort:
        Whether the rank + stable bubble sort runs (levels A-C).
    scan:
        Foreground decision: ``"break"`` (early-exit Algorithm 2),
        ``"flat"`` (unconditional Algorithm 3) or ``"recompute"``
        (flat scan with ``|x - mean|`` recomputed from the updated
        means instead of a live ``diff[]`` array — level F).
    overlapped:
        Host pipeline overlaps DMA with kernel execution (level C).
        Purely host-side; does not change the kernel body.
    tiling:
        Frame-group parameter residency: ``"none"`` (one frame per
        launch), ``"shared"`` (parameters staged through shared memory
        per tile, level G) or ``"registers"`` (parameters pinned in
        registers across the group — the design-space ablation the
        paper did not explore).
    fused:
        Downstream per-pixel stages welded onto the frame body by the
        fusion pass (a subset of :data:`FUSED_STAGES` in canonical
        order). Each fused stage consumes the background estimate and
        mask *while they are still live in registers*, eliminating the
        full-frame global-memory round trip a standalone post kernel
        would pay.
    """

    name: str = "mog_base"
    layout: str = "aos"
    update: str = "branchy"
    sort: bool = True
    scan: str = "break"
    overlapped: bool = False
    tiling: str = "none"
    fused: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @property
    def keep_diff(self) -> bool:
        """Whether the per-component ``diff[]`` array stays live from
        the update loop to the foreground scan."""
        return self.scan != "recompute"

    @property
    def group_structured(self) -> bool:
        """Whether the kernel processes frame *groups* per launch."""
        return self.tiling != "none"

    # ------------------------------------------------------------------
    def validate(self) -> "KernelSpec":
        """Check internal consistency; returns ``self`` for chaining."""
        if self.layout not in LAYOUTS:
            raise ConfigError(f"layout must be one of {LAYOUTS}, got {self.layout!r}")
        if self.update not in UPDATES:
            raise ConfigError(f"update must be one of {UPDATES}, got {self.update!r}")
        if self.scan not in SCANS:
            raise ConfigError(f"scan must be one of {SCANS}, got {self.scan!r}")
        if self.tiling not in TILINGS:
            raise ConfigError(f"tiling must be one of {TILINGS}, got {self.tiling!r}")
        if self.sort != (self.scan == "break"):
            raise ConfigError(
                "rank/sort exists only to serve the early-exit scan: "
                f"sort={self.sort} is inconsistent with scan={self.scan!r}"
            )
        if self.scan == "recompute" and self.update != "predicated":
            raise ConfigError(
                "the recompute scan drops the diff[] array, which the "
                "branchy update's virtual component still writes; apply "
                "predication before register reduction"
            )
        if self.tiling != "none":
            if self.layout != "soa":
                raise ConfigError("tiled kernels require the SoA layout")
            if self.scan != "recompute":
                raise ConfigError(
                    "tiled kernels stage only the parameter triple, not "
                    "diff[]; apply register reduction before tiling"
                )
        if tuple(self.fused) != canonical_fused_stages(self.fused):
            raise ConfigError(
                f"fused stages {self.fused} must be a subset of "
                f"{FUSED_STAGES} in canonical order"
            )
        return self

    def replace(self, **changes) -> "KernelSpec":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes).validate()


#: The canonical level-A kernel every pass stack starts from.
BASE_SPEC = KernelSpec()


# ----------------------------------------------------------------------
# Passes
# ----------------------------------------------------------------------
class KernelPass:
    """A named, pure ``KernelSpec -> KernelSpec`` transform.

    Class attributes describe the pass; :meth:`apply` performs it.
    Calling the pass validates the result, so an ill-ordered stack
    fails loudly instead of emitting a silently wrong kernel.
    """

    #: Registry name (also the CLI spelling).
    name: str = ""
    #: Paper level this pass realizes, or ``None`` for ablation passes.
    level: str | None = None
    #: The cumulative-optimizations keyword it contributes
    #: (``LevelSpec.enables``).
    enables: str = ""
    #: Row title in the paper's Table II/III, or ``None``.
    table: str | None = None
    #: One-line cost/benefit note (shown by ``repro levels``).
    note: str = ""

    def __call__(self, spec: KernelSpec) -> KernelSpec:
        return self.apply(spec).validate()

    def apply(self, spec: KernelSpec) -> KernelSpec:
        raise NotImplementedError

    def _require(self, cond: bool, spec: KernelSpec, why: str) -> None:
        if not cond:
            raise PassError(
                f"pass {self.name!r} cannot apply to {spec.name!r}: {why}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelPass {self.name}>"


class SoALayoutPass(KernelPass):
    name = "soa-layout"
    level = "B"
    enables = "coalescing"
    table = "Memory Coalescing"
    note = ("structure-of-arrays parameters: each warp request becomes "
            "contiguous (18 -> 2 transactions/warp for doubles)")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.layout == "aos", spec, "layout is already SoA")
        return spec.replace(layout="soa", name="mog_coalesced")


class TransferOverlapPass(KernelPass):
    name = "overlap"
    level = "C"
    enables = "overlap"
    table = "Overlapped Execution"
    note = ("host-side double buffering overlaps frame DMA with kernel "
            "execution (paper Fig 5b); the kernel body is unchanged")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(not spec.overlapped, spec, "overlap is already enabled")
        return spec.replace(overlapped=True)


class SortEliminationPass(KernelPass):
    name = "sort-elimination"
    level = "D"
    enables = "no-sort"
    table = "Branch Reduction"
    note = ("the foreground OR is order-independent on a GPU: drop rank, "
            "bubble sort and the early-exit branches (pure divergence)")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.sort, spec, "the sort was already eliminated")
        return spec.replace(sort=False, scan="flat", name="mog_nosort")


class PredicationPass(KernelPass):
    name = "predication"
    level = "E"
    enables = "predication"
    table = "Predicated Execution"
    note = ("blend updates with the 0/1 match predicate (Algorithm 5): "
            "every lane runs the same instructions, branch efficiency "
            "~99.5%, at the cost of computing unused update values")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.update == "branchy", spec,
                      "updates are already predicated")
        return spec.replace(update="predicated", name="mog_predicated")


class RegisterReductionPass(KernelPass):
    name = "register-reduction"
    level = "F"
    enables = "register-reduction"
    table = "Register Reduction"
    note = ("recompute |x - mean| at the scan instead of keeping diff[] "
            "live: arithmetic is cheaper than occupying a register; the "
            "freed registers raise occupancy (paper Fig 7c)")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.update == "predicated", spec,
                      "register reduction builds on the predicated update")
        self._require(spec.scan == "flat", spec,
                      "register reduction replaces the flat stored-diff scan")
        return spec.replace(scan="recompute", name="mog_regopt")


class TilingPass(KernelPass):
    name = "tiling"
    level = "G"
    enables = "tiling"
    table = None
    note = ("stage each tile's parameters in shared memory and process a "
            "frame group per launch: parameter DRAM traffic divided by "
            "the group size, at the cost of occupancy and group latency")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.tiling == "none", spec, "tiling already applied")
        return spec.replace(tiling="shared", name="mog_tiled")


class RegisterTilingPass(KernelPass):
    name = "register-tiling"
    level = None
    enables = "register-tiling"
    table = None
    note = ("ablation: keep the group's parameters in registers instead "
            "of shared memory — faster at 3 Gaussians, impossible at 5 "
            "(register ceiling), which justifies the paper's design")

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(spec.tiling == "none", spec, "tiling already applied")
        return spec.replace(tiling="registers", name="mog_tiled_regs")


class FusionPass(KernelPass):
    name = "fusion"
    level = None
    enables = "fusion"
    table = None
    note = ("weld the per-pixel consumers (foreground threshold, shadow "
            "test, class-histogram write) onto the frame body: each "
            "fused stage drops one full-frame global read+write")

    def __init__(self, stages=FUSED_STAGES) -> None:
        #: The stages to fuse; the registry instance fuses all of them,
        #: ablation sweeps construct instances with subsets.
        self.stages = canonical_fused_stages(stages)

    def apply(self, spec: KernelSpec) -> KernelSpec:
        self._require(not spec.fused, spec, "fusion already applied")
        self._require(bool(self.stages), spec, "no stages to fuse")
        return spec.replace(fused=self.stages, name=spec.name + "_fused")


#: All passes in canonical (paper) application order.
PASS_REGISTRY: dict[str, KernelPass] = {
    p.name: p
    for p in (
        SoALayoutPass(),
        TransferOverlapPass(),
        SortEliminationPass(),
        PredicationPass(),
        RegisterReductionPass(),
        TilingPass(),
        RegisterTilingPass(),
        FusionPass(),
    )
}

#: Pass stacks realizing the paper's levels (A is the empty stack).
LEVEL_PASSES: dict[str, tuple[str, ...]] = {
    "A": (),
    "B": ("soa-layout",),
    "C": ("soa-layout", "overlap"),
    "D": ("soa-layout", "overlap", "sort-elimination"),
    "E": ("soa-layout", "overlap", "sort-elimination", "predication"),
    "F": ("soa-layout", "overlap", "sort-elimination", "predication",
          "register-reduction"),
    "G": ("soa-layout", "overlap", "sort-elimination", "predication",
          "register-reduction", "tiling"),
}


def resolve_pass(p: str | KernelPass) -> KernelPass:
    """Look up a pass by name (pass instances pass through)."""
    if isinstance(p, KernelPass):
        return p
    try:
        return PASS_REGISTRY[p]
    except KeyError:
        raise PassError(
            f"unknown kernel pass {p!r}; expected one of "
            f"{sorted(PASS_REGISTRY)}"
        ) from None


def apply_passes(
    spec: KernelSpec, passes: tuple[str | KernelPass, ...] | list
) -> KernelSpec:
    """Fold a pass stack over ``spec`` (each pass validates its output)."""
    spec.validate()
    for p in passes:
        spec = resolve_pass(p)(spec)
    return spec


def spec_for_level(letter: str) -> KernelSpec:
    """The canonical spec of one paper level, built from its pass stack."""
    key = str(letter).strip().upper()
    if key not in LEVEL_PASSES:
        raise ConfigError(
            f"unknown optimization level {letter!r}; expected one of "
            f"{sorted(LEVEL_PASSES)}"
        )
    return apply_passes(BASE_SPEC, LEVEL_PASSES[key])


# ----------------------------------------------------------------------
# Derived metadata
# ----------------------------------------------------------------------
def mog_variant_for(spec: KernelSpec) -> str:
    """The functionally equivalent :mod:`repro.mog.vectorized` variant
    (the CPU backend and the kernels' bit-exactness oracle)."""
    if spec.scan == "recompute":
        return "regopt"
    if spec.sort:
        return "sorted"
    return "nosort" if spec.update == "branchy" else "predicated"


def register_model_for(spec: KernelSpec) -> str:
    """The :func:`repro.gpusim.registers.pinned_registers` level whose
    register model fits this spec (exact for the paper levels; the
    closest cumulative level for custom pass subsets)."""
    if spec.tiling != "none":
        return "G"
    if spec.scan == "recompute":
        return "F"
    if spec.update == "predicated":
        return "E"
    if not spec.sort:
        return "D"
    if spec.layout == "soa":
        return "C" if spec.overlapped else "B"
    return "A"
