"""repro - reproduction of "A GPU-based Algorithm-specific Optimization
for High-performance Background Subtraction" (Zhang, Tabkhi, Schirner;
ICPP 2014).

The package bundles:

* a Mixture-of-Gaussians background subtractor with the paper's four
  algorithmic variants (:mod:`repro.mog`),
* a Fermi-class SIMT GPU functional + performance simulator standing in
  for the paper's Tesla C2075 (:mod:`repro.gpusim`),
* the seven optimization levels A..G as simulated CUDA kernels
  (:mod:`repro.kernels`, :mod:`repro.core`),
* synthetic video workloads with ground truth (:mod:`repro.video`),
* SSIM / MS-SSIM quality metrics (:mod:`repro.metrics`),
* CPU baseline models and a process-parallel CPU implementation
  (:mod:`repro.cpu`, :mod:`repro.parallel`),
* the experiment harness regenerating every table and figure of the
  paper's evaluation (:mod:`repro.bench`).

Quickstart::

    from repro import BackgroundSubtractor
    from repro.video import surveillance_scene

    video = surveillance_scene(num_frames=30)
    bs = BackgroundSubtractor(video.shape, level="F")
    masks, report = bs.process(video)
    print(report.summary())
"""

from .config import (
    ControllerConfig,
    FaultPolicy,
    FusionParams,
    MoGParams,
    RunConfig,
    ServeConfig,
    TelemetryConfig,
)
from .core import BackgroundSubtractor, OptimizationLevel, RunReport
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "BackgroundSubtractor",
    "OptimizationLevel",
    "RunReport",
    "MoGParams",
    "FusionParams",
    "RunConfig",
    "FaultPolicy",
    "ControllerConfig",
    "ServeConfig",
    "TelemetryConfig",
    "ReproError",
    "__version__",
]
