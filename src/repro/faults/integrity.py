"""Mixture-state integrity guards.

MoG state is the worst case for soft errors: per-pixel Gaussians
persist across every frame, so one undetected bit-flip poisons a
pixel's background model indefinitely. This module checks the
invariants the update equations provably maintain (see
:mod:`repro.mog.update`) and — in ``"repair"`` mode — re-initialises
only the corrupted pixels' components from the current frame, the same
initialisation a fresh model applies to its first frame. Because the
repair is algorithm-specific (not a full reset), untouched pixels keep
their converged state and the repaired pixels re-converge within a few
frames.

Invariants checked per pixel (``tol`` = ``IntegrityPolicy.weight_tol``):

- all of ``w``, ``m``, ``sd`` finite;
- each component weight in ``[-tol, 1 + tol]`` — the update is a
  convex-ish decay ``w' = alpha*w + match*(1-alpha)`` from ``w <= 1``,
  so no component can exceed 1;
- the per-pixel weight sum in ``(0, K*(1 + tol)]`` — weights decay but
  never all reach zero (component 0 starts at 1 and the virtual
  component re-seeds ``initial_weight`` on a total miss);
- ``sd`` in ``[min(sd_floor, initial_sd)*(1 - 1e-6), sd_cap]`` — the
  update clamps at ``sd_floor`` and unclaimed components keep
  ``initial_sd``;
- ``|m| <= mean_cap`` — means blend toward pixel intensities
  ``[0, 255]``; the unclaimed-component sentinels sit at
  ``-1000*(K-1)`` at worst, far below the default cap.

The guard is family-aware (``model="mog"`` or ``"dmsg"``): DMSG state
stores mode *ages* in the weight plane, so its weight-plane invariant
is ``age in [0, DMSG_AGE_CAP]`` with a positive per-pixel age sum (the
background mode's age never drops below 1), and repair re-initialises
flagged pixels the way :func:`repro.dmsg.dmsg_state_from_first_frame`
initialises a fresh model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DMSG_AGE_CAP, MODELS, IntegrityPolicy, MoGParams
from ..errors import ConfigError, IntegrityError
from ..mog.params import MixtureState

__all__ = [
    "IntegrityGuard",
    "IntegrityReport",
    "find_corrupt_pixels",
    "repair_pixels",
]


@dataclass(frozen=True)
class IntegrityReport:
    """Result of one integrity check.

    Attributes
    ----------
    frame_index:
        Frame index at which the check ran.
    num_pixels:
        Total pixels in the model.
    corrupt:
        Flat indices of pixels violating at least one invariant
        (``int64`` array, possibly empty).
    nonfinite, weight, sd, mean:
        Per-invariant corrupt-pixel counts (a pixel can appear in
        several).
    """

    frame_index: int
    num_pixels: int
    corrupt: np.ndarray
    nonfinite: int
    weight: int
    sd: int
    mean: int

    @property
    def clean(self) -> bool:
        return self.corrupt.size == 0


def find_corrupt_pixels(
    state: MixtureState,
    params: MoGParams,
    policy: IntegrityPolicy,
    frame_index: int = 0,
    model: str = "mog",
) -> IntegrityReport:
    """Check every invariant; returns an :class:`IntegrityReport` with
    the flat pixel indices that violate at least one of them."""
    if model not in MODELS:
        raise ConfigError(f"model must be one of {MODELS}, got {model!r}")
    w, m, sd = state.w, state.m, state.sd
    tol = policy.weight_tol
    k = state.num_gaussians

    finite = np.isfinite(w) & np.isfinite(m) & np.isfinite(sd)
    bad_finite = ~finite.all(axis=0)

    # Non-finite values would poison the bound comparisons below
    # (NaN compares false everywhere), so evaluate bounds on a
    # finite-masked view: a pixel with a NaN weight is already flagged
    # by ``bad_finite`` and must not *mask* a bound violation in its
    # other, finite components.
    w_f = np.where(np.isfinite(w), w, 0.0)
    sd_f = np.where(np.isfinite(sd), sd, 1.0)
    m_f = np.where(np.isfinite(m), m, 0.0)

    if model == "dmsg":
        # The weight plane holds mode ages: non-negative, capped at
        # DMSG_AGE_CAP, and the background mode keeps age >= 1 so the
        # per-pixel sum stays positive.
        bad_w = ((w_f < -tol) | (w_f > DMSG_AGE_CAP + tol)).any(axis=0)
        bad_w |= w_f.sum(axis=0) <= 0.0
    else:
        bad_w = ((w_f < -tol) | (w_f > 1.0 + tol)).any(axis=0)
        w_sum = w_f.sum(axis=0)
        bad_w |= (w_sum <= 0.0) | (w_sum > k * (1.0 + tol))

    sd_low = min(float(params.sd_floor), float(params.initial_sd)) * (1.0 - 1e-6)
    bad_sd = ((sd_f < sd_low) | (sd_f > policy.sd_cap)).any(axis=0)

    bad_m = (np.abs(m_f) > policy.mean_cap).any(axis=0)

    corrupt = np.flatnonzero(bad_finite | bad_w | bad_sd | bad_m)
    return IntegrityReport(
        frame_index=int(frame_index),
        num_pixels=state.num_pixels,
        corrupt=corrupt,
        nonfinite=int(bad_finite.sum()),
        weight=int(bad_w.sum()),
        sd=int(bad_sd.sum()),
        mean=int(bad_m.sum()),
    )


def repair_pixels(
    state: MixtureState,
    frame_flat: np.ndarray,
    cols: np.ndarray,
    params: MoGParams,
    model: str = "mog",
) -> None:
    """Re-initialise the Gaussians of the pixels in ``cols`` from the
    current frame, exactly as the family's first-frame initialiser
    would — for MoG, component 0 centred on the observed intensity with
    full weight and the rest unclaimed; for DMSG, a background mode of
    age 1 on the observed intensity with an empty (age-0) candidate.

    The state arrays are copied and rebound, never mutated in place:
    ``state_snapshot`` hands out live references, so an in-place repair
    would silently rewrite history inside checkpoints taken earlier.
    """
    if model not in MODELS:
        raise ConfigError(f"model must be one of {MODELS}, got {model!r}")
    dt = state.dtype
    w = state.w.copy()
    m = state.m.copy()
    sd = state.sd.copy()
    w[:, cols] = dt.type(0.0)
    w[0, cols] = dt.type(1.0)
    m[0, cols] = np.asarray(frame_flat, dtype=dt)[cols]
    if model == "dmsg":
        for j in range(1, state.num_gaussians):
            m[j, cols] = np.asarray(frame_flat, dtype=dt)[cols]
    else:
        for j in range(1, state.num_gaussians):
            m[j, cols] = dt.type(-1000.0 * j)
    sd[:, cols] = dt.type(params.initial_sd)
    state.w, state.m, state.sd = w, m, sd


class IntegrityGuard:
    """Stateful wrapper running :func:`find_corrupt_pixels` per frame
    according to an :class:`~repro.config.IntegrityPolicy`.

    ``check`` is called at the *start* of a model's ``apply`` (before
    classification), so corruption that lands between frames is caught
    and — in repair mode — healed before it influences a single mask.

    - ``mode="detect"`` raises :class:`~repro.errors.IntegrityError`
      (absorbed as a degraded frame by ``on_error="degrade"`` paths);
    - ``mode="repair"`` heals the flagged pixels in place and keeps
      going.

    Telemetry (when a registry is supplied): ``integrity.checks``,
    ``integrity.violations``, ``integrity.pixels_repaired`` counters
    and an ``integrity.detection_latency_frames`` histogram measuring
    frames elapsed since the last injected fault (only meaningful when
    the fault-injection harness is active).
    """

    def __init__(
        self,
        policy: IntegrityPolicy,
        params: MoGParams,
        telemetry=None,
        metric_prefix: str = "integrity",
        model: str = "mog",
    ) -> None:
        if model not in MODELS:
            raise ConfigError(f"model must be one of {MODELS}, got {model!r}")
        self.policy = policy
        self.params = params
        self.telemetry = telemetry
        self.metric_prefix = metric_prefix
        self.model = model
        self.last_report: IntegrityReport | None = None

    def _counter(self, name: str):
        if self.telemetry is None:
            return None
        return self.telemetry.counter(f"{self.metric_prefix}.{name}")

    def check(
        self,
        state: MixtureState,
        frame_flat: np.ndarray,
        frame_index: int,
    ) -> IntegrityReport | None:
        """Run one integrity check (honouring ``check_every``); returns
        the report, or ``None`` when this frame is skipped."""
        if not self.policy.active:
            return None
        if frame_index % self.policy.check_every != 0:
            return None
        report = find_corrupt_pixels(
            state, self.params, self.policy, frame_index, model=self.model
        )
        self.last_report = report
        if (c := self._counter("checks")) is not None:
            c.inc()
        if report.clean:
            return report
        if (c := self._counter("violations")) is not None:
            c.inc(int(report.corrupt.size))
        self._observe_detection_latency(frame_index)
        if self.policy.mode == "repair":
            repair_pixels(
                state, frame_flat, report.corrupt, self.params,
                model=self.model,
            )
            if (c := self._counter("pixels_repaired")) is not None:
                c.inc(int(report.corrupt.size))
            return report
        raise IntegrityError(
            f"mixture-state integrity violated at frame {frame_index}: "
            f"{report.corrupt.size} corrupt pixels "
            f"(nonfinite={report.nonfinite}, weight={report.weight}, "
            f"sd={report.sd}, mean={report.mean})",
            frame_index=frame_index,
            pixels=int(report.corrupt.size),
        )

    def _observe_detection_latency(self, frame_index: int) -> None:
        """Frames between the last injected fault and its detection —
        the headline metric of the chaos suite. Only recorded when the
        injection harness has actually fired (``faults.injected > 0``)."""
        if self.telemetry is None:
            return
        if self.telemetry.counter("faults.injected").value <= 0:
            return
        injected_at = self.telemetry.gauge("faults.last_injected_frame").value
        latency = frame_index - injected_at
        if latency >= 0:
            self.telemetry.histogram(
                "integrity.detection_latency_frames"
            ).observe(float(latency))
