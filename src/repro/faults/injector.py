"""Deterministic soft-error injection across the stack.

One :class:`FaultInjector` interprets a
:class:`~repro.config.FaultPlan` and exposes a hook per layer:

=================  ====================================================
hook               called by
=================  ====================================================
``on_model_state`` CPU backend, start of ``BackgroundSubtractor.apply``
``on_launch``      :class:`~repro.gpusim.engine.SimtEngine.launch`
``on_dma``         :class:`~repro.core.pipeline.HostPipeline` after the
                   simulated host->device frame transfer
``on_frame``       :class:`~repro.core.stream.SurveillancePipeline`
                   after frame validation
``before_step``    :class:`FaultyPipeline` (serve layer)
=================  ====================================================

Each hook is a no-op unless the plan's target matches and the current
frame/launch index is in ``plan.frames``, so a single injector can be
threaded through every layer unconditionally. Bit-flips are injected by
viewing the victim element's bytes as an unsigned integer and XOR-ing a
randomly chosen bit — the same physical model ECC SECDED is built
against, which is what makes the ``ecc="on"`` semantics (single-bit
corrected, multi-bit uncorrectable) faithful.

This module also hosts :func:`kill_stripe`, previously an ad-hoc helper
inside ``tests/test_parallel_faults.py`` — the process-level "hard"
fault that complements the memory-level soft ones.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from ..config import FaultPlan
from ..errors import InjectedFault, IntegrityError
from ..utils.rng import rng_from_seed

__all__ = ["FaultInjector", "FaultyPipeline", "kill_stripe"]

#: uint view type per element size, for bit-level corruption.
_UINT_FOR_ITEMSIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


class FaultInjector:
    """Executes a :class:`~repro.config.FaultPlan` deterministically.

    Parameters
    ----------
    plan:
        The injection schedule.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; receives
        ``faults.injected``, ``faults.corrected``,
        ``faults.uncorrectable`` counters and the
        ``faults.last_injected_frame`` gauge the integrity guard uses
        to measure detection latency.
    """

    def __init__(self, plan: FaultPlan, telemetry=None) -> None:
        self.plan = plan
        self.telemetry = telemetry
        self.rng = rng_from_seed(plan.seed)
        self.injected = 0
        self.corrected = 0

    # -- internals -----------------------------------------------------

    def _due(self, target: str, index: int) -> bool:
        return self.plan.target == target and index in self.plan.frames

    def _count(self, name: str, n: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(f"faults.{name}").inc(n)

    def _mark_injected(self, index: int, n: int) -> None:
        self.injected += n
        self._count("injected", n)
        if self.telemetry is not None:
            self.telemetry.gauge("faults.last_injected_frame").set(index)

    def _corrupt(self, arr: np.ndarray, index: int) -> int:
        """Apply ``plan.flips`` faults to ``arr`` *in place* (the point:
        simulated hardware does not ask permission). Returns the number
        of faults that actually landed (0 when ECC corrected them).

        Raises :class:`~repro.errors.IntegrityError` for a stuck
        element under ``ecc="on"`` — a multi-bit error SECDED detects
        but cannot correct, the simulated machine-check path.
        """
        plan = self.plan
        flat_idx = self.rng.integers(0, arr.size, size=plan.flips)
        if plan.mode == "bitflip":
            bits = self.rng.integers(
                0, arr.dtype.itemsize * 8, size=plan.flips
            )
            if plan.ecc == "on":
                # SECDED corrects every single-bit flip: memory is
                # untouched, the event is only counted.
                self.corrected += plan.flips
                self._count("corrected", plan.flips)
                return 0
            coords = np.unravel_index(flat_idx, arr.shape)
            utype = _UINT_FOR_ITEMSIZE[arr.dtype.itemsize]
            victims = np.ascontiguousarray(arr[coords])
            bits_u = victims.view(utype) ^ (
                utype(1) << bits.astype(utype)
            )
            arr[coords] = bits_u.view(arr.dtype)
            self._mark_injected(index, plan.flips)
            return plan.flips
        # "stuck": overwrite whole elements. Under ECC this is a
        # multi-bit difference — detected, not correctable.
        if plan.ecc == "on":
            self._count("uncorrectable", plan.flips)
            raise IntegrityError(
                f"uncorrectable (multi-bit) memory error at index {index}: "
                f"{plan.flips} stuck element(s) under ecc='on'",
                frame_index=index,
                pixels=plan.flips,
            )
        coords = np.unravel_index(flat_idx, arr.shape)
        arr[coords] = arr.dtype.type(plan.stuck_value)
        self._mark_injected(index, plan.flips)
        return plan.flips

    # -- layer hooks ---------------------------------------------------

    def on_model_state(self, state, frame_index: int) -> int:
        """Corrupt the CPU backend's live mixture state (target
        ``"state"``). Picks one of the three arrays per fault round.
        Returns the number of faults that landed."""
        if state is None or not self._due("state", frame_index):
            return 0
        arrays = (state.w, state.m, state.sd)
        victim = arrays[int(self.rng.integers(0, len(arrays)))]
        return self._corrupt(victim, frame_index)

    def on_launch(self, memory, launch_index: int) -> int:
        """Corrupt simulated global memory before a kernel launch
        (target ``"state"``, sim backend). Injects into the
        state-carrying (float-dtype) buffers, optionally filtered by
        ``plan.buffer`` substring."""
        if not self._due("state", launch_index):
            return 0
        return self.corrupt_memory(memory, launch_index)

    def corrupt_memory(self, memory, index: int) -> int:
        """Unconditionally corrupt matching global-memory buffers of a
        :class:`~repro.gpusim.memory.GlobalMemory`."""
        landed = 0
        for buf in memory.buffers():
            if self.plan.buffer is not None:
                if self.plan.buffer not in buf.name:
                    continue
            elif buf.data.dtype.kind != "f":
                # No name filter: target state-carrying buffers only.
                # Frame/mask buffers are uint8 and transient per frame.
                continue
            landed += self._corrupt(buf.data, index)
        return landed

    def corrupt_shared(self, shared, index: int) -> int:
        """Corrupt a :class:`~repro.gpusim.sharedmem.SharedBuffer`'s
        backing array (per-block on-chip memory; the C2075's shared
        memory is ECC-protected too, which this models the same way)."""
        return self._corrupt(shared.data, index)

    def on_dma(self, flat: np.ndarray, frame_index: int) -> np.ndarray:
        """Corrupt a host->device frame transfer in place (target
        ``"dma"``). ``flat`` must already be a private copy — the
        pipeline's ``astype`` conversion guarantees that."""
        if self._due("dma", frame_index):
            self._corrupt(flat, frame_index)
        return flat

    def on_frame(self, frame: np.ndarray, frame_index: int) -> np.ndarray:
        """Corrupt an input frame at the video layer (target
        ``"frame"``). Returns a corrupted *copy*; the caller's array is
        never touched."""
        if not self._due("frame", frame_index):
            return frame
        corrupted = np.array(frame, copy=True)
        self._corrupt(corrupted, frame_index)
        return corrupted

    def before_step(self, frame_index: int) -> None:
        """Serve-layer hook (target ``"serve"``): sleep ``stall_s``
        ("stall") or raise :class:`~repro.errors.InjectedFault`
        ("raise")."""
        if not self._due("serve", frame_index):
            return
        self._mark_injected(frame_index, 1)
        if self.plan.mode == "stall":
            time.sleep(self.plan.stall_s)
            return
        raise InjectedFault(
            f"injected serve-layer fault at frame {frame_index} "
            f"(plan seed {self.plan.seed})"
        )


class FaultyPipeline:
    """Transparent proxy wrapping a pipeline-like object, applying a
    serve-target :class:`FaultInjector` before every ``step``.

    Everything else (attributes, ``restore_checkpoint``, telemetry)
    passes straight through, so a :class:`~repro.serve.StreamServer`
    can serve a wrapped pipeline without knowing it is under test.
    """

    def __init__(self, pipeline, injector: FaultInjector) -> None:
        self._pipeline = pipeline
        self._injector = injector

    def __getattr__(self, name):
        return getattr(self._pipeline, name)

    def step(self, frame):
        self._injector.before_step(self._pipeline.frame_index + 1)
        return self._pipeline.step(frame)


def kill_stripe(par, stripe: int, timeout_s: float = 10.0) -> None:
    """SIGKILL a :class:`~repro.parallel.ParallelMoG` stripe worker and
    wait until the process is actually dead, so the next ``apply()``
    deterministically sees a dead worker (the kill is asynchronous).

    The process-level "hard" fault of the chaos suite; raises
    :class:`TimeoutError` if the worker does not die within
    ``timeout_s``.
    """
    pid = par.worker_pids()[stripe]
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + timeout_s
    while par._workers[stripe]._proc.is_alive():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"stripe {stripe} worker did not die")
        time.sleep(0.01)
