"""Soft-error resilience: fault injection, integrity guards, durable
checkpoints.

Three cooperating pieces (see docs/architecture.md, "Soft errors,
integrity, and recovery"):

- :class:`FaultInjector` deterministically injects bit-flips / stuck
  values / stalls / raises across the gpusim, video, core and serve
  layers from a :class:`~repro.config.FaultPlan`;
- :class:`IntegrityGuard` validates MoG mixture-state invariants per
  frame under an :class:`~repro.config.IntegrityPolicy` and, in repair
  mode, re-initialises only the corrupted pixels from the current
  frame;
- :func:`write_checkpoint` / :func:`read_checkpoint` implement the
  CRC32-verified, schema-versioned, atomic-rename checkpoint files the
  serving path uses for crash-safe restore.
"""

from .checkpoint import (
    MAGIC,
    SCHEMA_VERSION,
    read_checkpoint,
    write_checkpoint,
)
from .injector import FaultInjector, FaultyPipeline, kill_stripe
from .integrity import (
    IntegrityGuard,
    IntegrityReport,
    find_corrupt_pixels,
    repair_pixels,
)

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "FaultInjector",
    "FaultyPipeline",
    "IntegrityGuard",
    "IntegrityReport",
    "find_corrupt_pixels",
    "kill_stripe",
    "read_checkpoint",
    "repair_pixels",
    "write_checkpoint",
]
