"""Crash-safe durable checkpoints for mixture/pipeline state.

File format (version 1)::

    +--------+----------+---------+-----------------------------------+
    | magic  | schema   | crc32   | body                              |
    | 'RPCK' | uint32le | uint32le| meta_len:u32 | meta JSON | npz    |
    +--------+----------+---------+-----------------------------------+

The CRC covers the whole body, so a truncated or bit-rotted file is
rejected deterministically. Writes go to a temporary file in the target
directory, are fsynced, then atomically renamed over the destination
(and the directory entry fsynced) — a crash at any point leaves either
the previous checkpoint or the new one, never a torn file. This is the
property that makes ``checkpoint_every`` safe against SIGKILL: the
serving path can die mid-write and still resume from a valid file.

Arrays travel as an uncompressed ``.npz`` payload, which preserves
dtypes bit-exactly — a restore is bit-identical to the saved state, and
masks produced after a restore match an uninterrupted run exactly.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from ..errors import CheckpointError

#: File magic of a repro checkpoint.
MAGIC = b"RPCK"
#: Current on-disk schema version.
SCHEMA_VERSION = 1

_HEADER = struct.Struct("<4sII")  # magic, schema, crc32(body)
_META_LEN = struct.Struct("<I")


def write_checkpoint(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict
) -> Path:
    """Atomically write ``arrays`` + JSON-serialisable ``meta`` to
    ``path``. Returns the path written.

    Raises :class:`~repro.errors.CheckpointError` on any I/O or
    serialisation failure; a failed write never leaves a partial file
    at ``path`` (the temporary is removed).
    """
    path = Path(path)
    try:
        meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint meta is not JSON-serialisable: {exc}"
        ) from exc
    payload = io.BytesIO()
    np.savez(payload, **{k: np.asarray(v) for k, v in arrays.items()})
    body = _META_LEN.pack(len(meta_blob)) + meta_blob + payload.getvalue()
    header = _HEADER.pack(MAGIC, SCHEMA_VERSION, zlib.crc32(body) & 0xFFFFFFFF)
    tmp = path.with_name(path.name + ".tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        # Durability of the rename itself: fsync the directory entry.
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError as exc:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise CheckpointError(
            f"cannot write checkpoint {path}: {exc}"
        ) from exc
    return path


def read_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read and validate a checkpoint; returns ``(arrays, meta)``.

    Every failure mode — missing file, bad magic, unsupported schema,
    truncation, CRC mismatch, undecodable payload — raises a clean
    :class:`~repro.errors.CheckpointError` (a
    :class:`~repro.errors.ReproError`), never a bare parser crash.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    if len(raw) < _HEADER.size:
        raise CheckpointError(
            f"checkpoint {path} is truncated ({len(raw)} bytes, header "
            f"needs {_HEADER.size})"
        )
    magic, schema, crc = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise CheckpointError(
            f"{path} is not a repro checkpoint (magic {magic!r})"
        )
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema version {schema}; this build "
            f"reads version {SCHEMA_VERSION}"
        )
    body = raw[_HEADER.size:]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CheckpointError(
            f"checkpoint {path} failed its CRC check (truncated or "
            "corrupted on disk)"
        )
    try:
        (meta_len,) = _META_LEN.unpack_from(body)
        meta = json.loads(body[_META_LEN.size:_META_LEN.size + meta_len])
        with np.load(io.BytesIO(body[_META_LEN.size + meta_len:])) as npz:
            arrays = {name: npz[name] for name in npz.files}
    except (struct.error, ValueError, OSError, KeyError) as exc:
        # CRC passed but the payload does not parse: a writer bug, not
        # disk corruption — still a typed error, never a crash.
        raise CheckpointError(
            f"checkpoint {path} payload is malformed: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise CheckpointError(
            f"checkpoint {path} meta must be a JSON object, got "
            f"{type(meta).__name__}"
        )
    return arrays, meta
