"""Array validation helpers used at public API boundaries."""

from __future__ import annotations

import numpy as np

from ..errors import VideoError


def as_gray_frame(frame: np.ndarray) -> np.ndarray:
    """Validate and normalise a single grayscale frame.

    Accepts a 2-D ``uint8`` array, or a 2-D float array with values in
    [0, 255] (converted to ``uint8`` by rounding). Anything else raises
    :class:`~repro.errors.VideoError`.
    """
    arr = np.asarray(frame)
    if arr.ndim != 2:
        raise VideoError(f"expected a 2-D grayscale frame, got shape {arr.shape}")
    if arr.size == 0:
        raise VideoError("frame is empty")
    if arr.dtype == np.uint8:
        return arr
    if np.issubdtype(arr.dtype, np.floating):
        # NaN compares false against any bound, so the range check alone
        # would let a NaN frame through and the uint8 cast would turn it
        # into silent garbage pixels.
        if not np.isfinite(arr).all():
            raise VideoError("float frame contains non-finite values")
        if arr.min() < 0.0 or arr.max() > 255.0:
            raise VideoError(
                "float frame values must lie in [0, 255], got "
                f"[{arr.min()}, {arr.max()}]"
            )
        return np.rint(arr).astype(np.uint8)
    if np.issubdtype(arr.dtype, np.integer):
        if arr.min() < 0 or arr.max() > 255:
            raise VideoError("integer frame values must lie in [0, 255]")
        return arr.astype(np.uint8)
    raise VideoError(f"unsupported frame dtype: {arr.dtype}")


def check_same_shape(a: np.ndarray, b: np.ndarray, what: str = "arrays") -> None:
    """Raise :class:`VideoError` unless ``a`` and ``b`` have equal shape."""
    if a.shape != b.shape:
        raise VideoError(f"{what} must have equal shapes: {a.shape} vs {b.shape}")


def to_uint8(mask: np.ndarray) -> np.ndarray:
    """Convert a boolean/0-1 mask to a 0/255 ``uint8`` image."""
    return (np.asarray(mask) != 0).astype(np.uint8) * np.uint8(255)
