"""Deterministic RNG plumbing.

Every stochastic component in the library takes either a seed or a
``numpy.random.Generator``; this helper normalises the two so results
are reproducible by default and composable when a caller wants to share
one generator across components.
"""

from __future__ import annotations

import numpy as np


def rng_from_seed(
    seed: int | np.random.Generator | None, default: int = 0
) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    * ``None`` -> a generator seeded with ``default`` (deterministic).
    * an ``int`` -> a generator seeded with it.
    * a ``Generator`` -> returned unchanged (shared state).
    """
    if seed is None:
        return np.random.default_rng(default)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))
