"""Small shared helpers: array validation, deterministic RNG plumbing."""

from .arrays import as_gray_frame, check_same_shape, to_uint8
from .rng import rng_from_seed

__all__ = ["as_gray_frame", "check_same_shape", "to_uint8", "rng_from_seed"]
