"""The paper's optimization levels A..G, derived from pass stacks.

Tables II and III of the paper define the levels cumulatively.  Each
:class:`OptimizationLevel` member wraps a :class:`LevelSpec` that is
*derived* from its kernel-pass stack (:mod:`repro.kernels.ir`): the
memory layout, host-pipeline overlap, equivalent vectorized variant,
kernel factory and Table II/III rows all come from the passes, so the
level registry cannot drift from what the kernels actually do.

Arbitrary pass subsets the paper never measured are first-class too:
:func:`custom_level` builds a :class:`LevelSpec` from any valid stack
(e.g. ``A + predication`` without sort elimination), and every consumer
— :class:`~repro.core.pipeline.HostPipeline`,
:class:`~repro.core.subtractor.BackgroundSubtractor`, the bench harness
and the CLI — accepts it wherever a level letter is accepted (the CLI
spelling is ``"A+predication"``; see :func:`resolve_level_spec`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import partial
from typing import Callable

from ..errors import ConfigError
from ..kernels.build import build_group_kernel, build_kernel
from ..kernels.ir import (
    BASE_SPEC,
    LEVEL_PASSES,
    PASS_REGISTRY,
    KernelSpec,
    apply_passes,
    mog_variant_for,
    register_model_for,
    resolve_pass,
)

#: A kernel factory: ``factory(layout, cfg, frame_buf, fg_buf)`` for
#: per-frame kernels, ``factory(layout, cfg, frame_bufs, fg_bufs,
#: tile_pixels=...)`` for group-structured ones.
KernelFactory = Callable[..., Callable]


@dataclass(frozen=True)
class LevelSpec:
    """Static description of one optimization level (paper or custom).

    Only identity and provenance are stored; everything operational —
    layout, overlap, kernel factory, equivalent vectorized variant —
    is derived from the pass stack's :class:`KernelSpec`.
    """

    letter: str
    title: str
    group: str  # "base" | "general" | "algorithm-specific" | "shared-memory" | "custom"
    passes: tuple[str, ...]  # kernel-pass stack (names, in order)
    kernel: KernelSpec = field(repr=False)
    paper_speedup: float | None  # Fig 8a / Fig 10a; None for custom levels

    # -- derived properties -------------------------------------------
    @property
    def layout(self) -> str:
        """Parameter memory layout: ``"aos"`` or ``"soa"``."""
        return self.kernel.layout

    @property
    def overlapped(self) -> bool:
        """Host pipeline overlaps DMA with kernels (level C+)."""
        return self.kernel.overlapped

    @property
    def group_structured(self) -> bool:
        """Kernel processes frame groups per launch (level G)."""
        return self.kernel.group_structured

    @property
    def mog_variant(self) -> str:
        """Functionally equivalent :mod:`repro.mog.vectorized` variant."""
        return mog_variant_for(self.kernel)

    @property
    def register_model(self) -> str:
        """Level letter keying the pinned-registers model."""
        return register_model_for(self.kernel)

    @property
    def enables(self) -> tuple[str, ...]:
        """Cumulative optimizations switched on (pass metadata)."""
        return ("base",) + tuple(
            PASS_REGISTRY[name].enables for name in self.passes
        )

    @property
    def kernel_factory(self) -> KernelFactory:
        """Factory building this level's simulated kernel."""
        if self.kernel.group_structured:
            return partial(build_group_kernel, self.kernel)
        return partial(build_kernel, self.kernel)

    def describe(self) -> dict:
        """JSON-friendly summary (the ``repro levels`` payload)."""
        return {
            "letter": self.letter,
            "title": self.title,
            "group": self.group,
            "passes": list(self.passes),
            "kernel": self.kernel.name,
            "layout": self.layout,
            "overlapped": self.overlapped,
            "group_structured": self.group_structured,
            "fused": list(self.kernel.fused),
            "mog_variant": self.mog_variant,
            "enables": list(self.enables),
            "paper_speedup": self.paper_speedup,
            "backends": backend_availability(self),
        }


def _level(
    letter: str, title: str, group: str, paper_speedup: float
) -> LevelSpec:
    passes = LEVEL_PASSES[letter]
    return LevelSpec(
        letter=letter,
        title=title,
        group=group,
        passes=passes,
        kernel=apply_passes(BASE_SPEC, passes),
        paper_speedup=paper_speedup,
    )


class OptimizationLevel(Enum):
    """Levels A..G; values are :class:`LevelSpec` descriptions."""

    A = _level("A", "base implementation", "base", 13.0)
    B = _level("B", "memory coalescing", "general", 41.0)
    C = _level("C", "overlapped execution", "general", 57.0)
    D = _level("D", "branch reduction", "algorithm-specific", 85.0)
    E = _level("E", "predicated execution", "algorithm-specific", 86.0)
    F = _level("F", "register reduction", "algorithm-specific", 97.0)
    G = _level("G", "tiled shared memory", "shared-memory", 101.0)

    @property
    def spec(self) -> LevelSpec:
        return self.value

    @property
    def letter(self) -> str:
        return self.value.letter

    @classmethod
    def parse(cls, level: "OptimizationLevel | str") -> "OptimizationLevel":
        """Accept a member, a letter ('F') or a name ('regopt'-ish title)."""
        if isinstance(level, cls):
            return level
        key = str(level).strip().upper()
        try:
            return cls[key]
        except KeyError:
            raise ConfigError(
                f"unknown optimization level {level!r}; expected one of "
                f"{[m.name for m in cls]}"
            ) from None


#: All levels in paper order.
LEVELS = tuple(OptimizationLevel)


def custom_level(
    passes, name: str | None = None, title: str | None = None
) -> LevelSpec:
    """Build a :class:`LevelSpec` from an arbitrary kernel-pass stack.

    ``passes`` is a sequence of pass names (or :class:`KernelPass`
    instances) applied to the level-A base in order.  If the stack is
    exactly one of the paper's levels, that level's spec is returned;
    otherwise a ``group="custom"`` spec without a paper speedup.  Pass
    prerequisites are enforced (e.g. ``register-reduction`` before
    ``predication`` raises), so ablation sweeps cannot silently build
    a kernel the passes do not describe.
    """
    resolved = tuple(resolve_pass(p) for p in passes)
    names = tuple(p.name for p in resolved)
    for member in OptimizationLevel:
        if member.spec.passes == names:
            return member.spec
    # Apply the *resolved instances*, not the names: a parameterised
    # pass instance (e.g. FusionPass with a stage subset) must keep its
    # configuration.
    kernel = apply_passes(BASE_SPEC, resolved)
    return LevelSpec(
        letter=name or ("A+" + "+".join(names) if names else "A"),
        title=title or "custom pass stack",
        group="custom",
        passes=names,
        kernel=kernel,
        paper_speedup=None,
    )


def resolve_level_spec(
    level: "OptimizationLevel | LevelSpec | str",
) -> LevelSpec:
    """Normalise any level designator to a :class:`LevelSpec`.

    Accepts an :class:`OptimizationLevel` member, a ready
    :class:`LevelSpec`, a level letter (``"F"``) or a pass expression
    ``"<base>+<pass>[+<pass>...]"`` where ``<base>`` is a level letter
    seeding the stack (empty means A): ``"A+predication"``,
    ``"B+sort-elimination"``, ``"+soa-layout"``.
    """
    if isinstance(level, LevelSpec):
        return level
    if isinstance(level, OptimizationLevel):
        return level.spec
    text = str(level).strip()
    if "+" in text:
        base, *extra = [part.strip() for part in text.split("+")]
        base_passes = (
            OptimizationLevel.parse(base).spec.passes if base else ()
        )
        return custom_level(base_passes + tuple(extra), name=text)
    return OptimizationLevel.parse(text).spec


# ----------------------------------------------------------------------
# Backend availability
# ----------------------------------------------------------------------
def backend_availability(level) -> dict:
    """Per-backend availability of a level spec, for discovery.

    Callers (``repro levels --json``, admission checks) use this to
    learn *before the first frame* that e.g. ``jit`` is requested but
    numba is missing, or that a spec has no CUDA rendering. Each entry
    is ``{"available": bool}`` plus a ``"reason"`` when unavailable.

    * ``cpu`` / ``sim`` — always available (every valid spec has a
      vectorized variant and a simulator kernel).
    * ``jit`` — available iff numba imports in this process; the probe
      reason is surfaced verbatim.
    * ``cuda-text`` — whether :mod:`repro.cudagen` can render the spec
      (register-resident tiling is a simulator-only ablation).
    """
    from ..kernels.jit import numba_available, numba_unavailable_reason

    spec = resolve_level_spec(level).kernel
    out = {
        "cpu": {"available": True},
        "sim": {"available": True},
    }
    if numba_available():
        out["jit"] = {"available": True}
    else:
        out["jit"] = {
            "available": False,
            "reason": numba_unavailable_reason() or "numba is not available",
        }
    if spec.tiling == "registers":
        out["cuda-text"] = {
            "available": False,
            "reason": (
                "register-resident tiling is a simulator-only ablation; "
                "no CUDA template"
            ),
        }
    else:
        out["cuda-text"] = {"available": True}
    return out


# ----------------------------------------------------------------------
# Paper tables (derived from pass metadata)
# ----------------------------------------------------------------------
def _table_rows(
    cols: list[OptimizationLevel],
    pass_names: tuple[str, ...],
    include_base: bool,
) -> list[tuple[str, list[str]]]:
    features = [("Base Implementation", "base")] if include_base else []
    features += [
        (PASS_REGISTRY[name].table, PASS_REGISTRY[name].enables)
        for name in pass_names
    ]
    return [
        (title, ["x" if key in lv.spec.enables else "" for lv in cols])
        for title, key in features
    ]


def table_ii_rows() -> list[tuple[str, list[str]]]:
    """The paper's Table II: general optimization levels."""
    return _table_rows(
        [OptimizationLevel.A, OptimizationLevel.B, OptimizationLevel.C],
        ("soa-layout", "overlap"),
        include_base=True,
    )


def table_iii_rows() -> list[tuple[str, list[str]]]:
    """The paper's Table III: algorithm-specific optimization levels."""
    return _table_rows(
        [OptimizationLevel.D, OptimizationLevel.E, OptimizationLevel.F],
        ("sort-elimination", "predication", "register-reduction"),
        include_base=False,
    )
