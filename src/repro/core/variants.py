"""The paper's optimization levels A..G, derived from pass stacks.

Tables II and III of the paper define the levels cumulatively.  Each
:class:`OptimizationLevel` member wraps a :class:`LevelSpec` that is
*derived* from its kernel-pass stack (:mod:`repro.kernels.ir`): the
memory layout, host-pipeline overlap, equivalent vectorized variant,
kernel factory and Table II/III rows all come from the passes, so the
level registry cannot drift from what the kernels actually do.

Arbitrary pass subsets the paper never measured are first-class too:
:func:`custom_level` builds a :class:`LevelSpec` from any valid stack
(e.g. ``A + predication`` without sort elimination), and every consumer
— :class:`~repro.core.pipeline.HostPipeline`,
:class:`~repro.core.subtractor.BackgroundSubtractor`, the bench harness
and the CLI — accepts it wherever a level letter is accepted (the CLI
spelling is ``"A+predication"``; see :func:`resolve_level_spec`).

The background-model family is a level axis too: ``"dmsg:F"`` resolves
level F's pass stack against the dual-mode single Gaussian family
(passes with no meaning for the family — sort elimination — are
skipped), and ``"dmsg:A+predication"`` builds a custom DMSG stack.
A bare designator means MoG, so every pre-existing spelling is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import partial
from typing import Callable

from ..errors import ConfigError
from ..kernels.build import build_group_kernel, build_kernel
from ..kernels.ir import (
    BASE_SPEC,
    LEVEL_PASSES,
    MOG_FAMILY,
    PASS_REGISTRY,
    KernelSpec,
    ModelFamily,
    applicable_passes,
    apply_passes,
    base_spec_for,
    oracle_variant_for,
    register_model_for,
    resolve_model,
    resolve_pass,
)

#: A kernel factory: ``factory(layout, cfg, frame_buf, fg_buf)`` for
#: per-frame kernels, ``factory(layout, cfg, frame_bufs, fg_bufs,
#: tile_pixels=...)`` for group-structured ones.
KernelFactory = Callable[..., Callable]


@dataclass(frozen=True)
class LevelSpec:
    """Static description of one optimization level (paper or custom).

    Only identity and provenance are stored; everything operational —
    layout, overlap, kernel factory, equivalent vectorized variant —
    is derived from the pass stack's :class:`KernelSpec`.
    """

    letter: str
    title: str
    group: str  # "base" | "general" | "algorithm-specific" | "shared-memory" | "custom"
    passes: tuple[str, ...]  # kernel-pass stack (names, in order)
    kernel: KernelSpec = field(repr=False)
    paper_speedup: float | None  # Fig 8a / Fig 10a; None for custom levels

    # -- derived properties -------------------------------------------
    @property
    def model(self) -> ModelFamily:
        """Background-model family this level's kernel implements."""
        return self.kernel.model

    @property
    def layout(self) -> str:
        """Parameter memory layout: ``"aos"`` or ``"soa"``."""
        return self.kernel.layout

    @property
    def overlapped(self) -> bool:
        """Host pipeline overlaps DMA with kernels (level C+)."""
        return self.kernel.overlapped

    @property
    def group_structured(self) -> bool:
        """Kernel processes frame groups per launch (level G)."""
        return self.kernel.group_structured

    @property
    def oracle_variant(self) -> str:
        """Functionally equivalent vectorized-oracle variant (a
        :mod:`repro.mog.vectorized` variant for MoG, ``"dual"`` for
        DMSG)."""
        return oracle_variant_for(self.kernel)

    @property
    def mog_variant(self) -> str:
        """Deprecated alias of :attr:`oracle_variant` (predates model
        families)."""
        return oracle_variant_for(self.kernel)

    @property
    def register_model(self) -> str:
        """Level letter keying the pinned-registers model."""
        return register_model_for(self.kernel)

    @property
    def enables(self) -> tuple[str, ...]:
        """Cumulative optimizations switched on (pass metadata)."""
        return ("base",) + tuple(
            PASS_REGISTRY[name].enables for name in self.passes
        )

    @property
    def kernel_factory(self) -> KernelFactory:
        """Factory building this level's simulated kernel."""
        if self.kernel.group_structured:
            return partial(build_group_kernel, self.kernel)
        return partial(build_kernel, self.kernel)

    def describe(self) -> dict:
        """JSON-friendly summary (the ``repro levels`` payload)."""
        return {
            "letter": self.letter,
            "title": self.title,
            "group": self.group,
            "model": self.model.name,
            "passes": list(self.passes),
            "kernel": self.kernel.name,
            "layout": self.layout,
            "overlapped": self.overlapped,
            "group_structured": self.group_structured,
            "fused": list(self.kernel.fused),
            "oracle_variant": self.oracle_variant,
            "mog_variant": self.mog_variant,
            "enables": list(self.enables),
            "paper_speedup": self.paper_speedup,
            "backends": backend_availability(self),
        }


def _level(
    letter: str, title: str, group: str, paper_speedup: float
) -> LevelSpec:
    passes = LEVEL_PASSES[letter]
    return LevelSpec(
        letter=letter,
        title=title,
        group=group,
        passes=passes,
        kernel=apply_passes(BASE_SPEC, passes),
        paper_speedup=paper_speedup,
    )


class OptimizationLevel(Enum):
    """Levels A..G; values are :class:`LevelSpec` descriptions."""

    A = _level("A", "base implementation", "base", 13.0)
    B = _level("B", "memory coalescing", "general", 41.0)
    C = _level("C", "overlapped execution", "general", 57.0)
    D = _level("D", "branch reduction", "algorithm-specific", 85.0)
    E = _level("E", "predicated execution", "algorithm-specific", 86.0)
    F = _level("F", "register reduction", "algorithm-specific", 97.0)
    G = _level("G", "tiled shared memory", "shared-memory", 101.0)

    @property
    def spec(self) -> LevelSpec:
        return self.value

    @property
    def letter(self) -> str:
        return self.value.letter

    @classmethod
    def parse(cls, level: "OptimizationLevel | str") -> "OptimizationLevel":
        """Accept a member, a letter ('F') or a name ('regopt'-ish title)."""
        if isinstance(level, cls):
            return level
        key = str(level).strip().upper()
        try:
            return cls[key]
        except KeyError:
            raise ConfigError(
                f"unknown optimization level {level!r}; expected one of "
                f"{[m.name for m in cls]}"
            ) from None


#: All levels in paper order.
LEVELS = tuple(OptimizationLevel)


def level_spec_for(
    letter: str, model: "ModelFamily | str" = MOG_FAMILY
) -> LevelSpec:
    """The :class:`LevelSpec` of one paper level for a model family.

    For MoG this is the :class:`OptimizationLevel` member's spec.  For
    other families the level's cumulative pass stack is filtered to the
    passes that apply (e.g. DMSG has no sort to eliminate), the family
    base spec seeds the fold, and the result keeps the bare letter —
    ``repro levels`` distinguishes rows by the ``model`` column, not by
    mangled letters.  Paper speedups are MoG measurements, so other
    families carry ``paper_speedup=None``.
    """
    fam = resolve_model(model)
    member = OptimizationLevel.parse(letter)
    if fam is MOG_FAMILY:
        return member.spec
    base = member.spec
    passes = applicable_passes(base.passes, fam)
    return LevelSpec(
        letter=base.letter,
        title=base.title,
        group=base.group,
        passes=passes,
        kernel=apply_passes(base_spec_for(fam), passes),
        paper_speedup=None,
    )


def custom_level(
    passes,
    name: str | None = None,
    title: str | None = None,
    model: "ModelFamily | str" = MOG_FAMILY,
) -> LevelSpec:
    """Build a :class:`LevelSpec` from an arbitrary kernel-pass stack.

    ``passes`` is a sequence of pass names (or :class:`KernelPass`
    instances) applied to the family's level-A base in order.  If the
    stack is exactly one of the paper's levels (for the default MoG
    family), that level's spec is returned; otherwise a
    ``group="custom"`` spec without a paper speedup.  Pass
    prerequisites are enforced (e.g. ``register-reduction`` before
    ``predication`` raises), so ablation sweeps cannot silently build
    a kernel the passes do not describe.  A pass that does not apply
    to the family (``sort-elimination`` on DMSG) is a no-op with a
    :class:`RuntimeWarning` — here the stack is an explicit request,
    unlike the cumulative level definitions, which filter silently.
    """
    fam = resolve_model(model)
    resolved = tuple(resolve_pass(p) for p in passes)
    names = tuple(p.name for p in resolved)
    if fam is MOG_FAMILY:
        for member in OptimizationLevel:
            if member.spec.passes == names:
                return member.spec
    # Apply the *resolved instances*, not the names: a parameterised
    # pass instance (e.g. FusionPass with a stage subset) must keep its
    # configuration.
    kernel = apply_passes(base_spec_for(fam), resolved)
    default_name = "A+" + "+".join(names) if names else "A"
    if fam is not MOG_FAMILY:
        default_name = f"{fam.name}:{default_name}"
    return LevelSpec(
        letter=name or default_name,
        title=title or "custom pass stack",
        group="custom",
        passes=names,
        kernel=kernel,
        paper_speedup=None,
    )


def resolve_level_spec(
    level: "OptimizationLevel | LevelSpec | str",
    model: "ModelFamily | str | None" = None,
) -> LevelSpec:
    """Normalise any level designator to a :class:`LevelSpec`.

    Accepts an :class:`OptimizationLevel` member, a ready
    :class:`LevelSpec`, a level letter (``"F"``) or a pass expression
    ``"<base>+<pass>[+<pass>...]"`` where ``<base>`` is a level letter
    seeding the stack (empty means A): ``"A+predication"``,
    ``"B+sort-elimination"``, ``"+soa-layout"``.

    A string designator may carry a ``model:`` prefix selecting the
    background-model family (``"dmsg:F"``, ``"dmsg:A+predication"``);
    without one the family defaults to ``model`` (or MoG).  When both
    the prefix and ``model`` are given they must agree — a silent
    override would hide a config mistake.
    """
    fam = None if model is None else resolve_model(model)
    if isinstance(level, LevelSpec):
        if fam is not None and level.model is not fam:
            raise ConfigError(
                f"level spec {level.letter!r} is a {level.model.name!r} "
                f"spec but model={fam.name!r} was requested"
            )
        return level
    if isinstance(level, OptimizationLevel):
        if fam is not None and fam is not MOG_FAMILY:
            return level_spec_for(level.letter, fam)
        return level.spec
    text = str(level).strip()
    if ":" in text:
        prefix, _, text = text.partition(":")
        prefix_fam = resolve_model(prefix)
        if fam is not None and prefix_fam is not fam:
            raise ConfigError(
                f"level designator {level!r} names model family "
                f"{prefix_fam.name!r} but model={fam.name!r} was requested"
            )
        fam = prefix_fam
        text = text.strip()
    if fam is None:
        fam = MOG_FAMILY
    if "+" in text:
        base, *extra = [part.strip() for part in text.split("+")]
        base_passes = (
            level_spec_for(base, fam).passes if base else ()
        )
        name = text if fam is MOG_FAMILY else f"{fam.name}:{text}"
        return custom_level(
            base_passes + tuple(extra), name=name, model=fam
        )
    return level_spec_for(text, fam)


# ----------------------------------------------------------------------
# Backend availability
# ----------------------------------------------------------------------
def backend_availability(level) -> dict:
    """Per-backend availability of a level spec, for discovery.

    Callers (``repro levels --json``, admission checks) use this to
    learn *before the first frame* that e.g. ``jit`` is requested but
    numba is missing, or that a spec has no CUDA rendering. Each entry
    is ``{"available": bool}`` plus a ``"reason"`` when unavailable.

    * ``cpu`` / ``sim`` — always available (every valid spec has a
      vectorized variant and a simulator kernel).
    * ``jit`` — available iff numba imports in this process; the probe
      reason is surfaced verbatim.
    * ``cuda-text`` — whether :mod:`repro.cudagen` can render the spec
      (register-resident tiling is a simulator-only ablation).
    """
    from ..kernels.jit import numba_available, numba_unavailable_reason

    spec = resolve_level_spec(level).kernel
    out = {
        "cpu": {"available": True},
        "sim": {"available": True},
    }
    if numba_available():
        out["jit"] = {"available": True}
    else:
        out["jit"] = {
            "available": False,
            "reason": numba_unavailable_reason() or "numba is not available",
        }
    if spec.tiling == "registers":
        out["cuda-text"] = {
            "available": False,
            "reason": (
                "register-resident tiling is a simulator-only ablation; "
                "no CUDA template"
            ),
        }
    elif spec.tiling != "none" and spec.model.name != "mog":
        out["cuda-text"] = {
            "available": False,
            "reason": (
                f"no tiled CUDA template for the {spec.model.name!r} "
                "family (shared-memory staging is rendered for MoG only)"
            ),
        }
    else:
        out["cuda-text"] = {"available": True}
    return out


# ----------------------------------------------------------------------
# Paper tables (derived from pass metadata)
# ----------------------------------------------------------------------
def _table_rows(
    cols: list[OptimizationLevel],
    pass_names: tuple[str, ...],
    include_base: bool,
) -> list[tuple[str, list[str]]]:
    features = [("Base Implementation", "base")] if include_base else []
    features += [
        (PASS_REGISTRY[name].table, PASS_REGISTRY[name].enables)
        for name in pass_names
    ]
    return [
        (title, ["x" if key in lv.spec.enables else "" for lv in cols])
        for title, key in features
    ]


def table_ii_rows() -> list[tuple[str, list[str]]]:
    """The paper's Table II: general optimization levels."""
    return _table_rows(
        [OptimizationLevel.A, OptimizationLevel.B, OptimizationLevel.C],
        ("soa-layout", "overlap"),
        include_base=True,
    )


def table_iii_rows() -> list[tuple[str, list[str]]]:
    """The paper's Table III: algorithm-specific optimization levels."""
    return _table_rows(
        [OptimizationLevel.D, OptimizationLevel.E, OptimizationLevel.F],
        ("sort-elimination", "predication", "register-reduction"),
        include_base=False,
    )
