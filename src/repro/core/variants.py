"""The paper's optimization levels A..G and their properties.

Tables II and III of the paper define the levels cumulatively; each
:class:`OptimizationLevel` member records what is enabled, which kernel
implements it, which memory layout it uses, whether the host pipeline
overlaps transfers with execution, and which vectorized variant it is
functionally equivalent to (enforced by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigError
from ..kernels import (
    make_base_kernel,
    make_coalesced_kernel,
    make_nosort_kernel,
    make_predicated_kernel,
    make_regopt_kernel,
)


@dataclass(frozen=True)
class LevelSpec:
    """Static description of one optimization level."""

    letter: str
    title: str
    group: str  # "base" | "general" | "algorithm-specific" | "shared-memory"
    layout: str  # "aos" | "soa"
    overlapped: bool  # host pipeline overlaps DMA with kernels
    mog_variant: str  # functionally equivalent repro.mog.vectorized variant
    kernel_factory: object  # None for the tiled level (group-structured)
    paper_speedup: float  # the speedup the paper reports (Fig 8a / Fig 10a)
    enables: tuple[str, ...]  # cumulative optimizations switched on


class OptimizationLevel(Enum):
    """Levels A..G; values are :class:`LevelSpec` descriptions."""

    A = LevelSpec(
        "A", "base implementation", "base", "aos", False, "sorted",
        make_base_kernel, 13.0, ("base",),
    )
    B = LevelSpec(
        "B", "memory coalescing", "general", "soa", False, "sorted",
        make_coalesced_kernel, 41.0, ("base", "coalescing"),
    )
    C = LevelSpec(
        "C", "overlapped execution", "general", "soa", True, "sorted",
        make_coalesced_kernel, 57.0, ("base", "coalescing", "overlap"),
    )
    D = LevelSpec(
        "D", "branch reduction", "algorithm-specific", "soa", True, "nosort",
        make_nosort_kernel, 85.0,
        ("base", "coalescing", "overlap", "no-sort"),
    )
    E = LevelSpec(
        "E", "predicated execution", "algorithm-specific", "soa", True,
        "predicated", make_predicated_kernel, 86.0,
        ("base", "coalescing", "overlap", "no-sort", "predication"),
    )
    F = LevelSpec(
        "F", "register reduction", "algorithm-specific", "soa", True,
        "regopt", make_regopt_kernel, 97.0,
        ("base", "coalescing", "overlap", "no-sort", "predication",
         "register-reduction"),
    )
    G = LevelSpec(
        "G", "tiled shared memory", "shared-memory", "soa", True, "regopt",
        None, 101.0,
        ("base", "coalescing", "overlap", "no-sort", "predication",
         "register-reduction", "tiling"),
    )

    @property
    def spec(self) -> LevelSpec:
        return self.value

    @property
    def letter(self) -> str:
        return self.value.letter

    @classmethod
    def parse(cls, level: "OptimizationLevel | str") -> "OptimizationLevel":
        """Accept a member, a letter ('F') or a name ('regopt'-ish title)."""
        if isinstance(level, cls):
            return level
        key = str(level).strip().upper()
        try:
            return cls[key]
        except KeyError:
            raise ConfigError(
                f"unknown optimization level {level!r}; expected one of "
                f"{[m.name for m in cls]}"
            ) from None


#: All levels in paper order.
LEVELS = tuple(OptimizationLevel)


def table_ii_rows() -> list[tuple[str, list[str]]]:
    """The paper's Table II: general optimization levels."""
    cols = [OptimizationLevel.A, OptimizationLevel.B, OptimizationLevel.C]
    features = [
        ("Base Implementation", "base"),
        ("Memory Coalescing", "coalescing"),
        ("Overlapped Execution", "overlap"),
    ]
    return [
        (name, ["x" if key in lv.spec.enables else "" for lv in cols])
        for name, key in features
    ]


def table_iii_rows() -> list[tuple[str, list[str]]]:
    """The paper's Table III: algorithm-specific optimization levels."""
    cols = [OptimizationLevel.D, OptimizationLevel.E, OptimizationLevel.F]
    features = [
        ("Branch Reduction", "no-sort"),
        ("Predicated Execution", "predication"),
        ("Register Reduction", "register-reduction"),
    ]
    return [
        (name, ["x" if key in lv.spec.enables else "" for lv in cols])
        for name, key in features
    ]
