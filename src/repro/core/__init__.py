"""Public API: the background subtractor and the optimization levels.

Typical use::

    from repro import BackgroundSubtractor, OptimizationLevel

    bs = BackgroundSubtractor((240, 320), level="F")
    masks, report = bs.process(frames)
    print(report.summary())
"""

from .pipeline import HostPipeline
from .results import RunReport
from .stream import StreamResult, SurveillancePipeline
from .subtractor import BackgroundSubtractor
from .variants import (
    LEVELS,
    LevelSpec,
    OptimizationLevel,
    custom_level,
    resolve_level_spec,
    table_ii_rows,
    table_iii_rows,
)

__all__ = [
    "BackgroundSubtractor",
    "OptimizationLevel",
    "LevelSpec",
    "LEVELS",
    "RunReport",
    "HostPipeline",
    "SurveillancePipeline",
    "StreamResult",
    "custom_level",
    "resolve_level_spec",
    "table_ii_rows",
    "table_iii_rows",
]
