"""Run-level result containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpusim.counters import KernelCounters
from ..gpusim.dma import PipelineResult
from ..gpusim.profiler import LaunchReport


@dataclass
class RunReport:
    """Everything measured about one simulated background-subtraction run.

    Attributes
    ----------
    level:
        The optimization level letter ("A".."G").
    num_frames, num_pixels:
        Workload size.
    launches:
        One :class:`LaunchReport` per kernel launch (per frame for
        levels A-F, per frame *group* for level G).
    pipeline:
        The host-side schedule (transfers + kernels) for the whole run.
    bytes_in_per_frame, bytes_out_per_frame:
        DMA volume per frame (input frame, foreground mask).
    registers_per_thread:
        The value used for occupancy (pinned by default).
    frames_profiled:
        Frames that ran on the profiled tier (``launches`` holds one
        report per profiled launch only). 0 means "all frames" — the
        default for runs without sampling.
    """

    level: str
    num_frames: int
    num_pixels: int
    num_gaussians: int
    dtype: str
    launches: list[LaunchReport] = field(default_factory=list)
    pipeline: PipelineResult | None = None
    bytes_in_per_frame: int = 0
    bytes_out_per_frame: int = 0
    registers_per_thread: int = 0
    frames_profiled: int = 0

    # ------------------------------------------------------------------
    @property
    def counters(self) -> KernelCounters:
        """Aggregate counters over all launches."""
        total = KernelCounters()
        for launch in self.launches:
            total.add(launch.counters)
        return total

    @property
    def counters_per_frame(self) -> KernelCounters:
        """Counters normalised per *profiled* frame.

        Under sampled profiling only ``frames_profiled`` frames carry
        counters, so that is the meaningful denominator; without
        sampling it equals ``num_frames``.
        """
        denom = self.frames_profiled or self.num_frames
        return self.counters.scaled(1.0 / max(denom, 1))

    @property
    def kernel_time(self) -> float:
        """Total kernel execution time."""
        return sum(ln.timing.total for ln in self.launches)

    @property
    def kernel_time_per_frame(self) -> float:
        denom = self.frames_profiled or self.num_frames
        return self.kernel_time / max(denom, 1)

    @property
    def total_time(self) -> float:
        """End-to-end time including transfers (pipeline schedule)."""
        if self.pipeline is None:
            return self.kernel_time
        return self.pipeline.total_time

    @property
    def time_per_frame(self) -> float:
        return self.total_time / max(self.num_frames, 1)

    @property
    def occupancy(self) -> float:
        if not self.launches:
            return 0.0
        return float(np.mean([ln.occupancy.occupancy for ln in self.launches]))

    @property
    def branch_efficiency(self) -> float:
        return self.counters.branch_efficiency

    @property
    def memory_access_efficiency(self) -> float:
        return self.counters.memory_access_efficiency

    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, float]:
        """Flat metric dict (the per-figure benches consume this)."""
        c = self.counters_per_frame
        return {
            "level": self.level,
            "branches_per_frame": float(c.branches_total),
            "branch_efficiency": self.branch_efficiency,
            "memory_access_efficiency": self.memory_access_efficiency,
            "load_transactions_per_frame": float(c.load_transactions),
            "store_transactions_per_frame": float(c.store_transactions),
            "transactions_per_frame": float(c.transactions),
            "registers_per_thread": float(self.registers_per_thread),
            "occupancy": self.occupancy,
            "kernel_time_per_frame": self.kernel_time_per_frame,
            "time_per_frame": self.time_per_frame,
            "total_time": self.total_time,
        }

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report (config, aggregate
        metrics, per-launch profiler rows)."""
        return {
            "level": self.level,
            "num_frames": self.num_frames,
            "num_pixels": self.num_pixels,
            "num_gaussians": self.num_gaussians,
            "dtype": self.dtype,
            "registers_per_thread": self.registers_per_thread,
            "frames_profiled": self.frames_profiled or self.num_frames,
            "metrics": {
                k: v for k, v in self.metrics().items() if k != "level"
            },
            "launches": [
                {"name": ln.name, **ln.metrics()} for ln in self.launches
            ],
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as indented JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def summary(self) -> str:
        """Human-readable one-run summary."""
        m = self.metrics()
        lines = [
            f"level {self.level}: {self.num_frames} frames x "
            f"{self.num_pixels} px, {self.num_gaussians} Gaussians, {self.dtype}",
            f"  time/frame        : {self.time_per_frame * 1e3:.3f} ms "
            f"(kernel {self.kernel_time_per_frame * 1e3:.3f} ms)",
            f"  memory efficiency : {m['memory_access_efficiency'] * 100:.1f}%",
            f"  branch efficiency : {m['branch_efficiency'] * 100:.1f}%",
            f"  registers/thread  : {self.registers_per_thread}",
            f"  SM occupancy      : {self.occupancy * 100:.1f}%",
        ]
        return "\n".join(lines)
