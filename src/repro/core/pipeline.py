"""Host-side pipeline driving the simulated GPU.

Owns the device objects of one run — engine, parameter layout, frame /
foreground buffers — launches the per-frame (or, for level G, per-group)
kernels, and finally replays the DMA schedule to obtain the end-to-end
time with or without transfer/kernel overlap (the level-C optimization).

Gaussian parameters live in GPU global memory for the whole run and are
never transferred per frame (all levels follow the paper here): only
the input frame travels host->device and the foreground mask
device->host.
"""

from __future__ import annotations

import numpy as np

from ..config import FusionParams, MoGParams, RunConfig, TelemetryConfig
from ..errors import ConfigError
from ..gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from ..gpusim.device import TESLA_C2075, DeviceSpec
from ..gpusim.dma import StreamScheduler
from ..gpusim.engine import SimtEngine
from ..gpusim.profiler import Profiler
from ..gpusim.registers import pinned_registers
from ..kernels import KernelConfig
from ..kernels.build import shared_bytes_for_tile
from ..kernels.fusion import build_post_kernels
from ..kernels.ir import canonical_fused_stages
from ..layout import AoSLayout, SoALayout
from ..post.analytics import (
    occupancy_heatmap,
    record_fused_telemetry,
    region_counts,
)
from ..layout.base import NUM_PARAMS
from ..mog.params import MixtureState
from ..telemetry import MetricsRegistry
from .results import RunReport
from .variants import LevelSpec, OptimizationLevel, resolve_level_spec


def max_tile_pixels(
    params: MoGParams, dtype, device: DeviceSpec = TESLA_C2075,
    model=None,
) -> int:
    """Largest warp-multiple tile whose parameters fit shared memory
    (and whose threads fit one block). 640 for the paper's 3-Gaussian
    double-precision configuration on the C2075.  ``model`` (a
    :class:`~repro.kernels.ir.ModelFamily`) overrides the per-pixel
    component count; ``None`` keeps the MoG reading of ``params``."""
    itemsize = np.dtype(np.float64).itemsize if str(dtype) in ("double", "float64") else 4
    k = model.component_count(params) if model is not None else params.num_gaussians
    per_pixel = k * NUM_PARAMS * itemsize
    tile = device.shared_mem_per_sm // per_pixel
    tile = min(tile, device.max_threads_per_block)
    return max((tile // device.warp_size) * device.warp_size, device.warp_size)


class HostPipeline:
    """Simulated-GPU execution of one background-subtraction run."""

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        level: OptimizationLevel | LevelSpec | str = OptimizationLevel.F,
        run_config: RunConfig | None = None,
        device: DeviceSpec = TESLA_C2075,
        calibration: Calibration = DEFAULT_CALIBRATION,
        registers: str | int = "pinned",
        telemetry: MetricsRegistry | None = None,
        integrity=None,
        fault_injector=None,
        post_stages=(),
        fusion: FusionParams | None = None,
    ) -> None:
        self.shape = tuple(shape)
        self.params = params or MoGParams()
        self.level = resolve_level_spec(level)
        self.run_config = run_config or RunConfig(
            height=self.shape[0], width=self.shape[1]
        )
        if (self.run_config.height, self.run_config.width) != self.shape:
            raise ConfigError(
                f"run_config geometry {self.run_config.height}x"
                f"{self.run_config.width} != shape {self.shape}"
            )
        self.device = device
        self.engine = SimtEngine(
            device, profile_every=self.run_config.profile_every,
            fault_injector=fault_injector,
        )
        self._fault_injector = fault_injector
        self._guard = None
        if integrity is not None and integrity.active:
            from ..faults.integrity import IntegrityGuard

            self._guard = IntegrityGuard(
                integrity, self.params, telemetry=telemetry,
                model=self.level.model.name,
            )
        self.profiler = Profiler(device, calibration)
        self.registers_mode = registers
        self.telemetry = telemetry or MetricsRegistry(
            TelemetryConfig(enabled=False)
        )
        self.telemetry.gauge("sim.profile_every").set(
            self.run_config.profile_every
        )

        spec = self.level
        n = self.run_config.num_pixels
        dtype = self.run_config.np_dtype
        layout_cls = AoSLayout if spec.layout == "aos" else SoALayout
        # The per-pixel component count comes from the level's model
        # family (K Gaussians for MoG, 2 modes for DMSG); everything
        # downstream — layouts, loop trip counts, shared-tile sizing —
        # reads it from the layout / kernel config.
        k_count = spec.model.component_count(self.params)
        self.layout = layout_cls(k_count, n, dtype)
        self.layout.allocate(self.engine.memory)
        self.kernel_config = KernelConfig.from_params(
            self.params, dtype, fusion=fusion, model=spec.model
        )

        #: Stages fused into the model kernel (from the level's spec) vs
        #: stages run as the standalone post-kernel chain (the measured
        #: unfused baseline). Mutually exclusive by construction.
        self.fused_stages = tuple(spec.kernel.fused)
        self.post_stages = canonical_fused_stages(post_stages)
        if self.fused_stages and self.post_stages:
            raise ConfigError(
                "post_stages is the unfused baseline of the fusion "
                "pass; a fused level runs the stages in-kernel already"
            )
        if self.post_stages and spec.group_structured:
            raise ConfigError(
                "the unfused post-kernel chain needs per-frame state "
                "in global memory; group-structured (tiled) levels "
                "only write state back at group end — fuse instead"
            )
        self._shadow_bufs: list = []
        self._class_bufs: list = []
        self._post_kernels: list = []
        self._shadow_maps: list[np.ndarray] = []
        self._class_maps: list[np.ndarray] = []

        if spec.group_structured:
            if spec.kernel.tiling == "shared":
                tile = self.run_config.tile_pixels
                limit = max_tile_pixels(
                    self.params, self.run_config.dtype, device,
                    model=spec.model,
                )
                if shared_bytes_for_tile(tile, self.kernel_config) > device.shared_mem_per_sm:
                    raise ConfigError(
                        f"tile_pixels={tile} needs more shared memory than "
                        f"the SM has; maximum for this configuration is {limit}"
                    )
            group = self.run_config.frame_group
            self._frame_bufs = [
                self.engine.memory.alloc(f"frame_in_{i}", n, np.uint8)
                for i in range(group)
            ]
            self._fg_bufs = [
                self.engine.memory.alloc(f"fg_out_{i}", n, np.uint8)
                for i in range(group)
            ]
            if "shadow" in self.fused_stages:
                self._shadow_bufs = [
                    self.engine.memory.alloc(f"shadow_out_{i}", n, np.uint8)
                    for i in range(group)
                ]
            if "histogram" in self.fused_stages:
                self._class_bufs = [
                    self.engine.memory.alloc(f"class_out_{i}", n, np.uint8)
                    for i in range(group)
                ]
            self._kernel = None  # built per group (group tail may be short)
        else:
            self._frame_bufs = [self.engine.memory.alloc("frame_in", n, np.uint8)]
            self._fg_bufs = [self.engine.memory.alloc("fg_out", n, np.uint8)]
            kwargs = {}
            if "shadow" in self.fused_stages:
                self._shadow_bufs = [
                    self.engine.memory.alloc("shadow_out", n, np.uint8)
                ]
                kwargs["shadow_buf"] = self._shadow_bufs[0]
            if "histogram" in self.fused_stages:
                self._class_bufs = [
                    self.engine.memory.alloc("class_out", n, np.uint8)
                ]
                kwargs["class_buf"] = self._class_bufs[0]
            self._kernel = spec.kernel_factory(
                self.layout, self.kernel_config, self._frame_bufs[0],
                self._fg_bufs[0], **kwargs,
            )
            if self.post_stages:
                self._post_kernels, post_bufs = build_post_kernels(
                    self.post_stages, self.layout, self.kernel_config,
                    self._frame_bufs[0], self._fg_bufs[0],
                    alloc=lambda name, dt: self.engine.memory.alloc(
                        name, n, dt
                    ),
                )
                if "shadow" in post_bufs:
                    self._shadow_bufs = [post_bufs["shadow"]]
                if "classes" in post_bufs:
                    self._class_bufs = [post_bufs["classes"]]

        self._initialised = False
        self._pending: list[np.ndarray] = []
        self._masks: list[np.ndarray] = []
        self._launch_reports = []
        self.frames_processed = 0
        # Frames accounted for by a restored checkpoint. Kept separate
        # from frames_processed so report()'s per-launch accounting
        # (which only knows about this instance's launches) stays
        # consistent after a resume.
        self.frames_resumed = 0
        # Per-launch kernel times driving the DMA schedule; functional
        # launches carry forward the last profiled launch's time.
        self._kernel_times: list[float] = []
        self._last_kernel_time = 0.0
        self.frames_profiled = 0
        self.profiled_frame_indices: list[int] = []

    # ------------------------------------------------------------------
    @property
    def registers_per_thread(self) -> int:
        if isinstance(self.registers_mode, int):
            return self.registers_mode
        if self.registers_mode == "pinned":
            return pinned_registers(
                self.level.register_model,
                self.level.model.component_count(self.params),
                self.run_config.dtype,
            )
        if self.registers_mode == "estimated":
            if not self.engine.launches:
                raise ConfigError("no launch yet to estimate registers from")
            return self.engine.launches[-1].estimated_registers
        raise ConfigError(
            f"registers must be 'pinned', 'estimated' or an int, got "
            f"{self.registers_mode!r}"
        )

    def _check_frame(self, frame: np.ndarray) -> np.ndarray:
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured {self.shape}"
            )
        return frame.reshape(-1).astype(np.uint8)

    def _ensure_state(self, frame: np.ndarray) -> None:
        if not self._initialised:
            if self.level.model.name == "dmsg":
                from ..dmsg import dmsg_state_from_first_frame

                state = dmsg_state_from_first_frame(
                    frame.reshape(self.shape), self.params,
                    self.run_config.dtype,
                )
            else:
                state = MixtureState.from_first_frame(
                    frame.reshape(self.shape), self.params,
                    self.run_config.dtype,
                )
            self.layout.upload(state)
            self._initialised = True

    def _integrity_check(self, flat: np.ndarray) -> None:
        """Validate (and in repair mode heal) the device-resident state.

        Runs before the launch, on a downloaded copy; a repaired state
        is uploaded back, so the kernel only ever sees healed
        parameters. Detect mode raises out of the guard."""
        if self._guard is None or not self._initialised:
            return
        state = self.layout.download()
        report = self._guard.check(
            state,
            flat.astype(self.run_config.np_dtype),
            self.frames_processed,
        )
        if report is not None and not report.clean:
            self.layout.upload(state)

    def _report_for(self, launch) -> None:
        regs = (
            launch.estimated_registers
            if self.registers_mode == "estimated"
            else self.registers_per_thread
        )
        self._launch_reports.append(self.profiler.report(launch, regs))

    def _after_launch(self, launch, num_frames: int, extra=()) -> None:
        """Record one frame's (or group's) launch outcome: profiled
        launches get a full profiler report; functional launches reuse
        the last profiled kernel time for the DMA schedule (the
        workload per launch is identical, only the measurement is
        sampled).  ``extra`` holds the frame's post-kernel launches
        (unfused baseline); their times fold into the same DMA
        pipeline slot, so the schedule still sees one entry per frame."""
        if launch.profiled:
            self._report_for(launch)
            total = self._launch_reports[-1].timing.total
            for post_launch in extra:
                self._report_for(post_launch)
                total += self._launch_reports[-1].timing.total
            self._last_kernel_time = total
            self.frames_profiled += num_frames
            self.profiled_frame_indices.extend(
                range(self.frames_processed, self.frames_processed + num_frames)
            )
            self.telemetry.counter("sim.frames_profiled").inc(num_frames)
        else:
            self.telemetry.counter("sim.frames_functional").inc(num_frames)
        self._kernel_times.append(self._last_kernel_time)

    # ------------------------------------------------------------------
    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask.

        Level G processes whole frame groups and cannot return per-frame
        results eagerly — use :meth:`process` (or feed groups manually
        via :meth:`apply_group`).
        """
        if self.level.group_structured:
            raise ConfigError(
                f"level {self.level.letter} is group-structured; use "
                "process() or apply_group()"
            )
        flat = self._check_frame(frame)
        self._ensure_state(flat)
        if self._fault_injector is not None:
            # `flat` is a private copy (astype in _check_frame), so the
            # simulated DMA corruption never touches the caller's frame.
            flat = self._fault_injector.on_dma(flat, self.frames_processed)
        self._integrity_check(flat)
        self._frame_bufs[0].data[:] = flat
        launch = self.engine.launch(
            self._kernel,
            grid_threads=self.run_config.num_pixels,
            threads_per_block=self.run_config.threads_per_block,
            name=f"{self._kernel.__name__}[{self.frames_processed}]",
        )
        # The unfused post chain runs at the same profiling tier as the
        # frame's model launch, so sampled runs stay comparable and the
        # engine's sampler cadence is not perturbed by the extra
        # launches.
        extra = [
            self.engine.launch(
                post_kernel,
                grid_threads=self.run_config.num_pixels,
                threads_per_block=self.run_config.threads_per_block,
                name=f"{post_kernel.__name__}[{self.frames_processed}]",
                profile=launch.profiled,
            )
            for post_kernel in self._post_kernels
        ]
        self._after_launch(launch, 1, extra=extra)
        self.frames_processed += 1
        mask = (self._fg_bufs[0].data != 0).reshape(self.shape)
        self._masks.append(mask)
        self._capture_analytics(0, mask)
        return mask

    def apply_group(self, frames: list[np.ndarray]) -> list[np.ndarray]:
        """Process one frame group through the tiled kernel (level G)."""
        if not self.level.group_structured:
            raise ConfigError(
                "apply_group is only meaningful for group-structured "
                "(tiled) levels"
            )
        if not frames:
            raise ConfigError("empty frame group")
        if len(frames) > self.run_config.frame_group:
            raise ConfigError(
                f"group of {len(frames)} exceeds configured frame_group="
                f"{self.run_config.frame_group}"
            )
        flats = [self._check_frame(f) for f in frames]
        self._ensure_state(flats[0])
        if self._fault_injector is not None:
            flats = [
                self._fault_injector.on_dma(flat, self.frames_processed + i)
                for i, flat in enumerate(flats)
            ]
        self._integrity_check(flats[0])
        for buf, flat in zip(self._frame_bufs, flats):
            buf.data[:] = flat
        kwargs = {}
        if self._shadow_bufs:
            kwargs["shadow_bufs"] = self._shadow_bufs[: len(flats)]
        if self._class_bufs:
            kwargs["class_bufs"] = self._class_bufs[: len(flats)]
        kernel = self.level.kernel_factory(
            self.layout,
            self.kernel_config,
            self._frame_bufs[: len(flats)],
            self._fg_bufs[: len(flats)],
            tile_pixels=self.run_config.tile_pixels,
            **kwargs,
        )
        launch = self.engine.launch(
            kernel,
            grid_threads=self.run_config.num_pixels,
            threads_per_block=self.run_config.tile_pixels,
            name=f"{kernel.__name__}[{self.frames_processed}+{len(flats)}]",
        )
        self._after_launch(launch, len(flats))
        self.frames_processed += len(flats)
        masks = [
            (buf.data != 0).reshape(self.shape)
            for buf in self._fg_bufs[: len(flats)]
        ]
        self._masks.extend(masks)
        for i, mask in enumerate(masks):
            self._capture_analytics(i, mask)
        return masks

    def process(self, frames) -> tuple[np.ndarray, RunReport]:
        """Process an iterable of frames; returns masks and the report."""
        frames = list(frames)
        if not frames:
            raise ConfigError("empty frame sequence")
        if self.level.group_structured:
            group = self.run_config.frame_group
            for start in range(0, len(frames), group):
                self.apply_group(frames[start : start + group])
            masks = self._masks[-len(frames):]
        else:
            masks = [self.apply(f) for f in frames]
        return np.stack(masks), self.report()

    # ------------------------------------------------------------------
    def report(self) -> RunReport:
        """Build the run report (including the DMA pipeline schedule)."""
        n_bytes = self.run_config.num_pixels  # uint8 frame and mask
        spec = self.level
        scheduler = StreamScheduler(self.device, overlapped=spec.overlapped)
        if spec.group_structured:
            # One pipeline slot per frame *group*: the group's frames are
            # transferred in, the tiled kernel runs, the group's masks
            # are transferred out.
            kernel_times = list(self._kernel_times)
            group = self.run_config.frame_group
            remaining = self.frames_processed
            sizes = []
            for _ in kernel_times:
                g = min(group, remaining)
                sizes.append(g)
                remaining -= g
            pipeline = (
                scheduler.run(
                    kernel_times,
                    bytes_in=[n_bytes * g for g in sizes],
                    bytes_out=[n_bytes * g for g in sizes],
                )
                if kernel_times
                else None
            )
        else:
            pipeline = scheduler.run(
                list(self._kernel_times),
                bytes_in=n_bytes,
                bytes_out=n_bytes,
            ) if self._kernel_times else None
        report = RunReport(
            level=self.level.letter,
            num_frames=self.frames_processed,
            num_pixels=self.run_config.num_pixels,
            num_gaussians=self.level.model.component_count(self.params),
            dtype=self.run_config.dtype,
            launches=list(self._launch_reports),
            pipeline=pipeline,
            bytes_in_per_frame=n_bytes,
            bytes_out_per_frame=n_bytes,
            registers_per_thread=(
                self._launch_reports[-1].registers_per_thread
                if self._launch_reports
                else self.registers_per_thread
            ),
            frames_profiled=self.frames_profiled,
        )
        return report

    # -- fused analytics ----------------------------------------------
    def _capture_analytics(self, buf_idx: int, mask: np.ndarray) -> None:
        """Copy one frame's shadow/class buffers out of device memory
        and record the fused telemetry."""
        if not (self.fused_stages or self.post_stages):
            return
        shadow = None
        classes = None
        if self._shadow_bufs:
            shadow = (
                self._shadow_bufs[buf_idx].data != 0
            ).reshape(self.shape)
            self._shadow_maps.append(shadow)
        if self._class_bufs:
            classes = (
                self._class_bufs[buf_idx].data.reshape(self.shape).copy()
            )
            self._class_maps.append(classes)
        record_fused_telemetry(
            self.telemetry, mask, shadow=shadow, classes=classes
        )

    def shadow_map(self) -> np.ndarray:
        """Last frame's boolean shadow map (``shadow`` stage)."""
        if not self._shadow_maps:
            raise ConfigError(
                "no shadow map: enable the 'shadow' fused (or post) "
                "stage and process a frame first"
            )
        return self._shadow_maps[-1]

    def class_map(self) -> np.ndarray:
        """Last frame's uint8 class map (``histogram`` stage)."""
        if not self._class_maps:
            raise ConfigError(
                "no class map: enable the 'histogram' fused (or post) "
                "stage and process a frame first"
            )
        return self._class_maps[-1]

    def fused_analytics(self, grid: tuple[int, int] = (4, 4)) -> dict:
        """Region analytics of the last frame: the occupancy heatmap
        (always available) and, with the ``histogram`` stage active,
        the per-region class counts from the integral histogram."""
        if not self._masks:
            raise ConfigError("no frame processed yet")
        out = {"occupancy": occupancy_heatmap(self._masks[-1], grid)}
        if self._class_maps:
            out["region_counts"] = region_counts(self._class_maps[-1], grid)
        return out

    def background_image(self) -> np.ndarray:
        """Most-probable background estimate from device state."""
        if not self._initialised:
            raise ConfigError("no frame processed yet")
        return self.layout.download().background_image(self.shape)

    def state(self) -> MixtureState:
        """Download the mixture state from simulated device memory."""
        if not self._initialised:
            raise ConfigError("no frame processed yet")
        return self.layout.download()

    # -- checkpoint / restore ------------------------------------------
    def state_snapshot(self):
        """Snapshot ``(w, m, sd, frames)`` downloaded from simulated
        device memory, or ``None`` before the first frame. ``frames``
        includes frames accounted for by an earlier resume."""
        if not self._initialised:
            return None
        st = self.layout.download()
        return (st.w, st.m, st.sd, self.frames_resumed + self.frames_processed)

    def restore_state(self, snapshot) -> None:
        """Upload a :meth:`state_snapshot` into simulated device memory,
        resuming exactly where it was taken. ``None`` resets to the
        pre-first-frame state."""
        if snapshot is None:
            self._initialised = False
            self.frames_resumed = 0
            return
        w, m, sd, frames = snapshot
        state = MixtureState(
            np.array(w, copy=True),
            np.array(m, copy=True),
            np.array(sd, copy=True),
        ).astype(self.run_config.dtype)
        self.layout.upload(state)  # validates (K, N) against the layout
        self._initialised = True
        self.frames_resumed = int(frames)
