"""A composable streaming pipeline: subtract -> clean -> track.

Wraps the three stages every example re-assembles by hand into one
object with a per-frame :meth:`step`, so applications (and the CLI)
consume a single interface::

    pipe = SurveillancePipeline((240, 320))
    for frame in source:
        result = pipe.step(frame)
        for track in result.tracks:
            ...

Each stage is optional and injectable; the defaults are sensible for
the synthetic scenes (no opening — see the post-processing tests on why
opening is dangerous for small objects).

The pipeline is written to run unattended (the serving-path regime):

* frames are validated up front, so a malformed frame raises a clear
  :class:`~repro.errors.ConfigError` before any state changes;
* the frame index commits only when a step succeeds — an exception
  mid-step leaves the index and the warm-up accounting exactly where
  they were, and the same frame can be retried;
* with ``on_error="degrade"`` a failing stage yields the last good
  mask (flagged ``degraded``) instead of raising, so one bad frame
  does not take the stream down;
* every stage is timed into a :class:`~repro.telemetry.MetricsRegistry`
  whose snapshot rides along on each :class:`StreamResult`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from ..config import STAGE_ERROR_POLICIES, MoGParams, RunConfig, TelemetryConfig
from ..errors import CheckpointError, ConfigError
from ..post.morphology import MaskCleaner
from ..telemetry import MetricsRegistry
from ..track.tracker import CentroidTracker, Track, TrackerParams
from .subtractor import BackgroundSubtractor


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one pipeline step.

    ``degraded`` marks a step that served the last good mask because a
    stage failed (``error`` holds the failure's repr); ``telemetry`` is
    the registry snapshot taken as the step completed.
    """

    frame_index: int
    raw_mask: np.ndarray
    mask: np.ndarray
    tracks: list[Track]
    degraded: bool = False
    error: str | None = None
    telemetry: dict = field(default_factory=dict)

    @property
    def foreground_rate(self) -> float:
        return float(self.mask.mean())


class SurveillancePipeline:
    """Background subtraction + cleanup + tracking, streamed.

    Parameters
    ----------
    on_error:
        ``"raise"`` (default) re-raises a stage failure without
        committing the frame index; ``"degrade"`` serves the last good
        mask instead (before any mask has succeeded, an all-background
        mask of the configured shape is served, so consumers never see
        ``None``).
    telemetry:
        Optional shared :class:`~repro.telemetry.MetricsRegistry`; one
        is created if omitted (pass
        ``MetricsRegistry(TelemetryConfig(enabled=False))`` to opt out).
    profile_every:
        For the simulated backend, profile every Nth kernel launch and
        run the rest on the functional tier (``sim.frames_profiled`` /
        ``sim.frames_functional`` land in the telemetry snapshot).
        ``None`` keeps the run config's value. Ignored by the CPU
        backend.
    integrity:
        Optional :class:`~repro.config.IntegrityPolicy` guarding the
        mixture state each frame. In ``"detect"`` mode a violation
        raises :class:`~repro.errors.IntegrityError` — which under
        ``on_error="degrade"`` serves the last good mask like any other
        stage failure; in ``"repair"`` mode corrupted pixels are
        re-initialised from the current frame and the stream continues.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` corrupting frames
        / model state / simulated DMA per its plan (testing aid).
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        level: str = "F",
        backend: str = "cpu",
        model: str | None = None,
        run_config: RunConfig | None = None,
        cleaner: MaskCleaner | None = None,
        tracker_params: TrackerParams | None = None,
        warmup_frames: int = 15,
        on_error: str = "raise",
        telemetry: MetricsRegistry | None = None,
        profile_every: int | None = None,
        integrity=None,
        fault_injector=None,
    ) -> None:
        if warmup_frames < 0:
            raise ConfigError(
                f"warmup_frames must be non-negative, got {warmup_frames}"
            )
        if on_error not in STAGE_ERROR_POLICIES:
            raise ConfigError(
                f"on_error must be one of {STAGE_ERROR_POLICIES}, "
                f"got {on_error!r}"
            )
        self.telemetry = telemetry or MetricsRegistry(TelemetryConfig())
        self.subtractor = BackgroundSubtractor(
            shape, params, level=level, backend=backend, model=model,
            run_config=run_config, profile_every=profile_every,
            telemetry=self.telemetry,
            integrity=integrity, fault_injector=fault_injector,
        )
        self._fault_injector = fault_injector
        self.cleaner = cleaner or MaskCleaner(
            open_radius=0, close_radius=2, min_area=6
        )
        self.tracker = CentroidTracker(tracker_params)
        self.warmup_frames = warmup_frames
        self.on_error = on_error
        self.frame_index = -1
        self._last_good_mask: np.ndarray | None = None

    def _check_frame(self, frame) -> np.ndarray:
        """Validate shape/dtype before any state is touched."""
        frame = np.asarray(frame)
        if frame.shape != self.subtractor.shape:
            raise ConfigError(
                f"frame shape {frame.shape} != configured "
                f"{self.subtractor.shape}"
            )
        if frame.dtype.kind not in "uif" or frame.dtype.kind == "f" and not (
            np.isfinite(frame).all()
        ):
            raise ConfigError(
                f"frame must be numeric and finite, got dtype {frame.dtype}"
            )
        return frame

    def _degraded_result(self, index: int, exc: BaseException) -> StreamResult:
        """Serve the last good mask for a frame whose stage failed.

        Before any frame has succeeded there is no good mask to fall
        back on; an all-background mask of the configured shape is
        served instead — downstream consumers always get a real array,
        never ``None``.
        """
        tel = self.telemetry
        tel.counter("stream.frames_degraded").inc()
        self.frame_index = index  # the frame was consumed, count it
        mask = self._last_good_mask
        if mask is None:
            mask = np.zeros(self.subtractor.shape, dtype=bool)
        return StreamResult(
            frame_index=index,
            raw_mask=mask,
            mask=mask,
            tracks=[],
            degraded=True,
            error=repr(exc),
            telemetry=tel.snapshot(),
        )

    def step(self, frame: np.ndarray) -> StreamResult:
        """Process one frame through all stages.

        During the model's warm-up window the tracker is not fed (the
        unconverged mask would spawn phantom tracks), but masks are
        still produced and returned.
        """
        tel = self.telemetry
        index = self.frame_index + 1
        try:
            frame = self._check_frame(frame)
        except Exception as exc:
            # A malformed frame is a stage failure like any other: under
            # "degrade" the stream serves the last good mask instead of
            # dying mid-sequence (an npz file with one NaN frame must
            # not take the whole stream down).
            tel.counter("stream.frames_invalid").inc()
            tel.counter("stream.stage_errors").inc()
            if self.on_error == "degrade":
                return self._degraded_result(index, exc)
            raise
        if self._fault_injector is not None:
            frame = self._fault_injector.on_frame(frame, index)
        t0 = time.perf_counter()
        try:
            with tel.time("stream.subtract_s"):
                raw = self.subtractor.apply(frame)
            with tel.time("stream.clean_s"):
                mask = self.cleaner(raw)
        except Exception as exc:
            tel.counter("stream.stage_errors").inc()
            if self.on_error == "degrade":
                return self._degraded_result(index, exc)
            raise  # frame_index uncommitted: the frame can be retried
        tracks: list[Track] = []
        if index >= self.warmup_frames:
            try:
                with tel.time("stream.track_s"):
                    tracks = self.tracker.update(mask, frame_index=index)
            except Exception as exc:
                tel.counter("stream.stage_errors").inc()
                if self.on_error != "degrade":
                    raise
                tracks = []
        # Commit point: all state updates happen together, after every
        # stage either succeeded or was explicitly degraded.
        self.frame_index = index
        self._last_good_mask = mask
        tel.counter("stream.frames_total").inc()
        tel.histogram("stream.step_s").observe(time.perf_counter() - t0)
        return StreamResult(
            frame_index=index,
            raw_mask=raw,
            mask=mask,
            tracks=tracks,
            telemetry=tel.snapshot(),
        )

    def run(self, frames) -> list[StreamResult]:
        """Convenience: step through an iterable of frames."""
        results = [self.step(f) for f in frames]
        if not results:
            raise ConfigError("empty frame sequence")
        return results

    # -- durable checkpoints -------------------------------------------
    def save_checkpoint(self, path, extra_meta: dict | None = None) -> None:
        """Write a durable, crash-safe checkpoint of the pipeline to
        ``path`` (atomic rename, CRC32, schema-versioned — see
        :mod:`repro.faults.checkpoint`).

        Captures the mixture state, the frame index and the last good
        mask; restoring into an identically configured pipeline resumes
        bit-identically. Raises :class:`~repro.errors.CheckpointError`
        before the first frame (there is no state to save yet).

        ``extra_meta`` lets a caller ride additional JSON-serialisable
        keys along in the checkpoint metadata (the serving tier records
        its submission cursor as ``source_seq``); it cannot override
        the pipeline's own keys.
        """
        from ..faults.checkpoint import write_checkpoint

        snapshot = self.subtractor.state_snapshot()
        if snapshot is None:
            raise CheckpointError(
                "cannot checkpoint before the first frame was processed"
            )
        w, m, sd, frames_processed = snapshot
        arrays = {"w": w, "m": m, "sd": sd}
        if self._last_good_mask is not None:
            arrays["last_good_mask"] = self._last_good_mask
        meta = dict(extra_meta or {})
        meta.update({
            "kind": "surveillance_pipeline",
            "shape": list(self.subtractor.shape),
            "level": self.subtractor.spec.letter,
            "model": self.subtractor.model.name,
            "backend": self.subtractor.backend,
            "params": dataclasses.asdict(self.subtractor.params),
            "frame_index": self.frame_index,
            "frames_processed": int(frames_processed),
            "warmup_frames": self.warmup_frames,
        })
        with self.telemetry.time("checkpoint.write_s"):
            write_checkpoint(path, arrays, meta)
        self.telemetry.counter("checkpoint.written").inc()

    def restore_checkpoint(self, path) -> int:
        """Restore a :meth:`save_checkpoint` file; returns the restored
        frame index (the last frame the checkpointed pipeline served).

        The checkpoint's configuration must match this pipeline's
        (shape, level, model family, model parameters) — a mismatch
        raises :class:`~repro.errors.CheckpointError` rather than
        silently resuming a different model.
        """
        from ..faults.checkpoint import read_checkpoint

        arrays, meta = read_checkpoint(path)
        if meta.get("kind") != "surveillance_pipeline":
            raise CheckpointError(
                f"{path} is not a surveillance-pipeline checkpoint "
                f"(kind={meta.get('kind')!r})"
            )
        # Checkpoints written before model families existed carry no
        # "model" key; they are MoG by construction.
        file_model = meta.get("model", "mog")
        want_model = self.subtractor.model.name
        if file_model != want_model:
            raise CheckpointError(
                f"checkpoint model-family mismatch: file holds "
                f"{file_model!r} state, pipeline is configured with "
                f"{want_model!r} — restoring one family's planes into "
                f"another would corrupt the model"
            )
        expected = {
            "shape": list(self.subtractor.shape),
            "level": self.subtractor.spec.letter,
            "params": dataclasses.asdict(self.subtractor.params),
        }
        for key, want in expected.items():
            if meta.get(key) != want:
                raise CheckpointError(
                    f"checkpoint {key} mismatch: file has "
                    f"{meta.get(key)!r}, pipeline is configured with "
                    f"{want!r}"
                )
        for name in ("w", "m", "sd"):
            if name not in arrays:
                raise CheckpointError(
                    f"checkpoint {path} is missing state array {name!r}"
                )
        self.subtractor.restore_state(
            (arrays["w"], arrays["m"], arrays["sd"],
             meta["frames_processed"])
        )
        self.frame_index = int(meta["frame_index"])
        mask = arrays.get("last_good_mask")
        self._last_good_mask = (
            mask.astype(bool) if mask is not None else None
        )
        # Callers (the serving tier) read ride-along keys such as
        # ``source_seq`` from here after a successful restore.
        self.last_restore_meta = dict(meta)
        self.telemetry.counter("checkpoint.restored").inc()
        return self.frame_index

    def summary(self) -> str:
        return self.tracker.summary()
