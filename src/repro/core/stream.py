"""A composable streaming pipeline: subtract -> clean -> track.

Wraps the three stages every example re-assembles by hand into one
object with a per-frame :meth:`step`, so applications (and the CLI)
consume a single interface::

    pipe = SurveillancePipeline((240, 320))
    for frame in source:
        result = pipe.step(frame)
        for track in result.tracks:
            ...

Each stage is optional and injectable; the defaults are sensible for
the synthetic scenes (no opening — see the post-processing tests on why
opening is dangerous for small objects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MoGParams, RunConfig
from ..errors import ConfigError
from ..post.morphology import MaskCleaner
from ..track.tracker import CentroidTracker, Track, TrackerParams
from .subtractor import BackgroundSubtractor


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one pipeline step."""

    frame_index: int
    raw_mask: np.ndarray
    mask: np.ndarray
    tracks: list[Track]

    @property
    def foreground_rate(self) -> float:
        return float(self.mask.mean())


class SurveillancePipeline:
    """Background subtraction + cleanup + tracking, streamed."""

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        level: str = "F",
        backend: str = "cpu",
        run_config: RunConfig | None = None,
        cleaner: MaskCleaner | None = None,
        tracker_params: TrackerParams | None = None,
        warmup_frames: int = 15,
    ) -> None:
        if warmup_frames < 0:
            raise ConfigError(
                f"warmup_frames must be non-negative, got {warmup_frames}"
            )
        self.subtractor = BackgroundSubtractor(
            shape, params, level=level, backend=backend,
            run_config=run_config,
        )
        self.cleaner = cleaner or MaskCleaner(
            open_radius=0, close_radius=2, min_area=6
        )
        self.tracker = CentroidTracker(tracker_params)
        self.warmup_frames = warmup_frames
        self.frame_index = -1

    def step(self, frame: np.ndarray) -> StreamResult:
        """Process one frame through all stages.

        During the model's warm-up window the tracker is not fed (the
        unconverged mask would spawn phantom tracks), but masks are
        still produced and returned.
        """
        self.frame_index += 1
        raw = self.subtractor.apply(frame)
        mask = self.cleaner(raw)
        if self.frame_index >= self.warmup_frames:
            tracks = self.tracker.update(mask, frame_index=self.frame_index)
        else:
            tracks = []
        return StreamResult(
            frame_index=self.frame_index,
            raw_mask=raw,
            mask=mask,
            tracks=tracks,
        )

    def run(self, frames) -> list[StreamResult]:
        """Convenience: step through an iterable of frames."""
        results = [self.step(f) for f in frames]
        if not results:
            raise ConfigError("empty frame sequence")
        return results

    def summary(self) -> str:
        return self.tracker.summary()
