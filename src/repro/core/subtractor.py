"""The top-level :class:`BackgroundSubtractor` facade.

Three backends:

* ``backend="cpu"`` — the practical interpreted path: the vectorized
  NumPy oracle of the selected model family, no simulation.
  ``report()`` is not available.
* ``backend="jit"`` — the compiled hot path: per-pixel kernels emitted
  from the level's :class:`~repro.kernels.ir.KernelSpec` and compiled
  with numba (:mod:`repro.kernels.jit`). Masks, mixture state and
  fused shadow/class maps are bit-identical to ``cpu``. When numba is
  not installed the subtractor degrades to ``cpu`` with a
  ``RuntimeWarning`` and a ``jit.fallbacks`` counter —
  :attr:`BackgroundSubtractor.active_backend` says what actually ran.
* ``backend="sim"`` — the paper-reproduction path: the chosen
  optimization level runs on the simulated Tesla C2075 and every frame
  is profiled (counters, occupancy, modelled time).

All backends produce identical foreground masks for the same
optimization level (enforced by tests), because the kernels and the
vectorized variants implement the same pinned semantics.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..config import BACKENDS, FusionParams, MoGParams, RunConfig
from ..errors import ConfigError, JitUnavailableError
from ..gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from ..gpusim.device import TESLA_C2075, DeviceSpec
from ..kernels import KernelConfig
from ..kernels.ir import MOG_FAMILY
from ..mog.jit import MoGJit
from ..mog.vectorized import MoGVectorized
from ..post.analytics import (
    occupancy_heatmap,
    record_fused_telemetry,
    region_counts,
    run_fused_stages,
)
from .pipeline import HostPipeline
from .results import RunReport
from .variants import LevelSpec, OptimizationLevel, resolve_level_spec


class BackgroundSubtractor:
    """Background subtraction with selectable model family and
    optimization level.

    Parameters
    ----------
    shape:
        Frame geometry ``(height, width)``.
    params:
        Algorithmic parameters (:class:`~repro.config.MoGParams`).
    level:
        Optimization level ``"A"``..``"G"`` (or an
        :class:`OptimizationLevel`), a custom
        :class:`~repro.core.variants.LevelSpec`, or a pass expression
        such as ``"A+predication"``; selects kernel, layout and
        pipeline behaviour. Functionally, A-C produce the ``sorted``
        variant's masks, D/E the same masks, F/G the ``regopt``
        variant's.  A string level may carry a model prefix
        (``"dmsg:F"``).
    model:
        Background-model family: ``"mog"`` (default; the paper's
        mixture of Gaussians) or ``"dmsg"`` (dual-mode single
        Gaussian — one background mode plus an age-gated candidate;
        cheaper per pixel). ``None`` takes ``run_config.model`` when
        set, else the level designator's prefix, else ``"mog"``. An
        explicit ``model`` must agree with the level's prefix.
    backend:
        ``"cpu"`` (vectorized NumPy), ``"jit"`` (numba-compiled
        kernels, cpu fallback when numba is missing) or ``"sim"``
        (simulated GPU). ``None`` (default) takes
        ``run_config.backend`` when set, else ``"sim"``.
    run_config, device, calibration, registers:
        Simulation knobs; the CPU/JIT backends read only
        ``run_config.dtype`` (and ``run_config.backend``).
    profile_every:
        Override ``run_config.profile_every`` for the simulated
        backend: profile every Nth launch, run the rest on the
        functional tier (exact masks, no counters). ``None`` keeps the
        run config's value.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry` receiving
        ``sim.frames_profiled`` / ``sim.frames_functional`` counters
        and the ``sim.profile_every`` gauge (and, when integrity or
        fault injection is active, their event counters).
    integrity:
        Optional :class:`~repro.config.IntegrityPolicy`; when active,
        mixture-state invariants are checked each frame before
        classification (see :class:`repro.faults.IntegrityGuard`).
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` threaded into the
        backend (CPU model state / sim memory and DMA hooks). Testing
        aid; ``None`` in production.

    Examples
    --------
    >>> bs = BackgroundSubtractor((64, 64), backend="cpu")
    >>> mask = bs.apply(np.zeros((64, 64), dtype=np.uint8))
    >>> mask.shape
    (64, 64)
    """

    def __init__(
        self,
        shape: tuple[int, int],
        params: MoGParams | None = None,
        level: OptimizationLevel | LevelSpec | str = OptimizationLevel.F,
        model: str | None = None,
        backend: str | None = None,
        run_config: RunConfig | None = None,
        device: DeviceSpec = TESLA_C2075,
        calibration: Calibration = DEFAULT_CALIBRATION,
        registers: str | int = "pinned",
        profile_every: int | None = None,
        telemetry=None,
        integrity=None,
        fault_injector=None,
        post_stages=(),
        fusion: FusionParams | None = None,
    ) -> None:
        if backend is None:
            backend = (
                run_config.backend
                if run_config is not None and run_config.backend
                else "sim"
            )
        if backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        self.shape = tuple(shape)
        self.params = params or MoGParams()
        if model is None and run_config is not None:
            model = run_config.model
        self.spec = resolve_level_spec(level, model=model)
        self.model = self.spec.model
        # Paper levels keep the enum identity (``bs.level is
        # OptimizationLevel.F``) for the default MoG family; custom
        # pass stacks and non-MoG families expose the spec.
        self.level: OptimizationLevel | LevelSpec = (
            OptimizationLevel[self.spec.letter]
            if self.spec.letter in OptimizationLevel.__members__
            and self.spec.model is MOG_FAMILY
            else self.spec
        )
        self.backend = backend
        #: What actually runs: equals ``backend`` except when a
        #: ``"jit"`` request degraded to ``"cpu"`` (numba missing).
        self.active_backend = backend
        self._fault_injector = fault_injector
        self._telemetry = telemetry
        #: Seconds spent compiling kernels at construction (jit backend
        #: only; 0.0 elsewhere and on warm-cache hits).
        self.compile_s = 0.0
        self._fusion_cfg = None
        self._jit_fused = False
        self._last_mask = None
        self._last_shadow = None
        self._last_classes = None
        if backend in ("cpu", "jit"):
            if post_stages:
                raise ConfigError(
                    "post_stages (the unfused post-kernel baseline) is "
                    "a simulator feature; the CPU and JIT backends fuse "
                    "via a fused level spec"
                )
            dtype = run_config.dtype if run_config is not None else "double"
            self._impl = None
            if backend == "jit":
                try:
                    self._impl = MoGJit(
                        self.shape, self.params,
                        spec=self.spec.kernel, dtype=dtype, fusion=fusion,
                        integrity=integrity, telemetry=telemetry,
                    )
                    self._jit_fused = bool(self.spec.kernel.fused)
                    self.compile_s = self._impl.compile_s
                except JitUnavailableError as exc:
                    warnings.warn(
                        f"backend='jit' requested but unavailable ({exc}); "
                        "falling back to the cpu backend (masks are "
                        "identical, throughput is not)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    if telemetry is not None:
                        telemetry.counter("jit.fallbacks").inc()
                    self.active_backend = "cpu"
            if self._impl is None:
                if self.model.name == "dmsg":
                    from ..dmsg import DmsgVectorized

                    self._impl = DmsgVectorized(
                        self.shape, self.params,
                        variant=self.spec.oracle_variant, dtype=dtype,
                        integrity=integrity, telemetry=telemetry,
                    )
                else:
                    self._impl = MoGVectorized(
                        self.shape, self.params,
                        variant=self.spec.oracle_variant, dtype=dtype,
                        integrity=integrity, telemetry=telemetry,
                    )
                if self.spec.kernel.fused:
                    # The CPU mirror of the fused tail: same expressions,
                    # same run dtype, applied right after the model update.
                    self._fusion_cfg = KernelConfig.from_params(
                        self.params, dtype, fusion=fusion,
                        model=self.model,
                    )
            self._pipeline = None
        else:
            if profile_every is not None:
                base = run_config or RunConfig(
                    height=self.shape[0], width=self.shape[1]
                )
                run_config = base.replace(profile_every=profile_every)
            self._pipeline = HostPipeline(
                self.shape, self.params, self.spec,
                run_config=run_config, device=device,
                calibration=calibration, registers=registers,
                telemetry=telemetry, integrity=integrity,
                fault_injector=fault_injector,
                post_stages=post_stages, fusion=fusion,
            )
            self._impl = None

    # ------------------------------------------------------------------
    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Process one frame; returns the boolean foreground mask."""
        if self._impl is not None:
            if self._fault_injector is not None:
                self._fault_injector.on_model_state(
                    self._impl.state, self._impl.frames_processed
                )
            mask = self._impl.apply(frame)
            if self._fusion_cfg is not None:
                mask = self._apply_fused_post(frame, mask)
            elif self._jit_fused:
                self._record_jit_fused(mask)
            return mask
        return self._pipeline.apply(frame)

    def _record_jit_fused(self, mask) -> None:
        """Collect the fused outputs the compiled kernel produced
        in-register (no host-side post pass needed)."""
        stages = self.spec.kernel.fused
        self._last_mask = mask
        self._last_shadow = (
            (self._impl.last_shadow != 0) if "shadow" in stages else None
        )
        self._last_classes = (
            self._impl.last_classes if "histogram" in stages else None
        )
        record_fused_telemetry(
            self._telemetry, mask,
            shadow=self._last_shadow, classes=self._last_classes,
        )

    def _apply_fused_post(self, frame, mask) -> np.ndarray:
        """CPU mirror of the fused kernel tail (NumPy oracle)."""
        st = self._impl.state
        result = run_fused_stages(
            np.asarray(frame), st.w, st.m, mask,
            self.spec.kernel.fused, self._fusion_cfg,
        )
        self._last_mask = result.mask
        self._last_shadow = result.shadow
        self._last_classes = result.classes
        record_fused_telemetry(
            self._telemetry, result.mask,
            shadow=result.shadow, classes=result.classes,
        )
        return result.mask

    def process(self, frames) -> tuple[np.ndarray, RunReport | None]:
        """Process an iterable of frames.

        Returns ``(masks, report)``; ``report`` is ``None`` for the CPU
        backend.
        """
        if self._impl is not None:
            if self._fusion_cfg is not None or self._jit_fused:
                # apply_sequence bypasses the per-frame wrapper, so the
                # fused bookkeeping must run frame by frame here.
                return np.stack([self.apply(f) for f in list(frames)]), None
            return self._impl.apply_sequence(frames), None
        return self._pipeline.process(frames)

    # -- fused analytics ----------------------------------------------
    def shadow_map(self) -> np.ndarray:
        """Last frame's boolean shadow map (``shadow`` fused stage)."""
        if self._impl is not None:
            if self._last_shadow is None:
                raise ConfigError(
                    "no shadow map: use a level with the 'shadow' fused "
                    "stage and process a frame first"
                )
            return self._last_shadow
        return self._pipeline.shadow_map()

    def class_map(self) -> np.ndarray:
        """Last frame's uint8 class map (``histogram`` fused stage)."""
        if self._impl is not None:
            if self._last_classes is None:
                raise ConfigError(
                    "no class map: use a level with the 'histogram' "
                    "fused stage and process a frame first"
                )
            return self._last_classes
        return self._pipeline.class_map()

    def fused_analytics(self, grid: tuple[int, int] = (4, 4)) -> dict:
        """Region analytics of the last frame (occupancy heatmap and,
        with the ``histogram`` stage, per-region class counts)."""
        if self._impl is not None:
            if self._last_mask is None:
                raise ConfigError(
                    "no fused frame yet: use a fused level and process "
                    "a frame first"
                )
            out = {"occupancy": occupancy_heatmap(self._last_mask, grid)}
            if self._last_classes is not None:
                out["region_counts"] = region_counts(self._last_classes, grid)
            return out
        return self._pipeline.fused_analytics(grid)

    def report(self) -> RunReport:
        """The run report so far (simulated backend only)."""
        if self._pipeline is None:
            raise ConfigError(
                f"the {self.active_backend!r} backend does not produce "
                "run reports; use backend='sim'"
            )
        return self._pipeline.report()

    def background_image(self) -> np.ndarray:
        """Most-probable background estimate (Table IV's 'Background')."""
        if self._impl is not None:
            return self._impl.background_image()
        return self._pipeline.background_image()

    # -- checkpoint / restore ------------------------------------------
    def state_snapshot(self):
        """Uniform snapshot across backends: ``(w, m, sd, frames)`` or
        ``None`` before the first frame. The CPU backend returns live
        references (cheap); the JIT backend copies (its kernels mutate
        state in place); the sim backend downloads a copy from the
        simulated device."""
        if self._impl is not None:
            return self._impl.state_snapshot()
        return self._pipeline.state_snapshot()

    def restore_state(self, snapshot) -> None:
        """Restore a :meth:`state_snapshot` (either backend's); arrays
        are always copied into the backend's own storage."""
        if self._impl is not None:
            self._impl.restore_state(snapshot)
        else:
            self._pipeline.restore_state(snapshot)
